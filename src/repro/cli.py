"""Command-line interface: ``python -m repro <command>``.

Gives the repository an adoption-grade front door:

* ``python -m repro list``                  -- declared experiments
  (registry metadata only; imports no implementation module)
* ``python -m repro run fig13_los --preset quick --seed 7 --out runs/x``
  -- run one experiment, print its paper-style table, and (with
  ``--out``) write a versioned JSON artifact
* ``python -m repro run-all --preset quick --workers 4 --out runs/x``
  -- run every experiment, fanning out across processes, with a
  per-experiment pass/fail summary
* ``python -m repro show runs/x/fig13_los.json`` -- re-render a saved
  artifact exactly as the live run printed it
* ``python -m repro info``                  -- library and calibration
  summary
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main"]

#: Preset choices mirrored from repro.experiments.registry.PRESET_NAMES
#: (kept literal so building the parser imports nothing).
_PRESETS = ("quick", "full", "paper")


def _render_result(result) -> str:
    """The one output format shared by ``run`` and ``show``."""
    lines = [f"==== {result.name} ====", result.render()]
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _run_one(name: str, preset: str, seed: int | None, out_dir: str | None) -> str:
    """Run one experiment; returns the text to print (raises on error)."""
    from repro.experiments import registry

    spec = registry.get_spec(name)
    overrides = {}
    if seed is not None:
        if not spec.has_param("seed"):
            raise registry.RegistryError(
                f"experiment {name!r} is deterministic and takes no --seed"
            )
        overrides["seed"] = seed
    result = spec.run(preset, **overrides)
    text = _render_result(result)
    if out_dir is not None:
        path = result.save_in(out_dir)
        text += f"\nartifact: {path}"
    return text


def _run_all_worker(
    name: str, preset: str, seed: int | None, out_dir: str | None
) -> tuple[str, bool, str]:
    """Pool entry point for ``run-all``: never raises.

    Runs in a child process; inner Monte-Carlo pools are disabled so
    parallelism lives at exactly one level.
    """
    os.environ["REPRO_WORKERS"] = "1"
    return _run_all_serial(name, preset, seed, out_dir)


def _run_all_serial(
    name: str, preset: str, seed: int | None, out_dir: str | None
) -> tuple[str, bool, str]:
    from repro.experiments import registry

    if seed is not None and not registry.get_spec(name).has_param("seed"):
        seed = None
    try:
        return name, True, _run_one(name, preset, seed, out_dir)
    except Exception as exc:  # noqa: BLE001 -- one failure must not kill the run
        return name, False, f"{type(exc).__name__}: {exc}"


def _cmd_list() -> int:
    from repro.experiments import registry

    print("experiments (paper tables and figures):")
    for spec in registry.specs():
        print(f"  {spec.name:22s} {spec.paper_ref:26s} {spec.description}")
    print(f"presets: {', '.join(_PRESETS)} (see 'run --preset')")
    return 0


def _cmd_info() -> int:
    from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
    from repro.phy.protocols import Protocol

    print("multiscatter reproduction -- Gong et al., CoNEXT 2020")
    print("calibrated LoS backscatter ranges:")
    for p in Protocol:
        link = BackscatterLink(PROTOCOL_LINK_DEFAULTS[p])
        print(f"  {p.value:8s} {link.max_range_m():5.1f} m "
              f"(tx {PROTOCOL_LINK_DEFAULTS[p].tx_power_dbm:.0f} dBm)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import registry

    try:
        print(_run_one(args.experiment, args.preset, args.seed, args.out))
    except registry.UnknownExperimentError as exc:
        print(f"{exc.args[0]}; see 'python -m repro list'", file=sys.stderr)
        return 2
    except registry.RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.experiments import registry
    from repro.sim.runner import resolve_workers

    names = registry.names()
    workers = min(resolve_workers(args.workers), len(names))
    jobs = [(name, args.preset, args.seed, args.out) for name in names]
    if workers <= 1:
        outcomes = [_run_all_serial(*job) for job in jobs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_all_worker, *job) for job in jobs]
            outcomes = [f.result() for f in futures]

    for name, ok, text in outcomes:
        if ok:
            print(text)
        else:
            print(f"==== {name} ====\nFAILED: {text}")
        print()
    failures = [name for name, ok, _ in outcomes if not ok]
    print(f"ran {len(outcomes)} experiments, preset {args.preset!r}:")
    for name, ok, _ in outcomes:
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    if failures:
        print(f"{len(failures)} failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_show(path: str) -> int:
    from repro.experiments.artifacts import ArtifactError, ExperimentResult

    try:
        result = ExperimentResult.load(path)
    except FileNotFoundError:
        print(f"no such artifact: {path}", file=sys.stderr)
        return 2
    except ArtifactError as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return 2
    print(_render_result(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="multiscatter: multiprotocol backscatter reproduction",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list declared experiments (fast, no NumPy)")
    sub.add_parser("info", help="library and calibration summary")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    run_all_p = sub.add_parser("run-all", help="run every experiment")
    for p in (run_p, run_all_p):
        p.add_argument(
            "--preset",
            choices=_PRESETS,
            default="full",
            help="parameter preset (default: full)",
        )
        p.add_argument(
            "--seed",
            type=int,
            default=None,
            metavar="N",
            help="override the spec seed (seeded experiments only)",
        )
        p.add_argument(
            "--out",
            default=None,
            metavar="DIR",
            help="write <experiment>.json artifacts under DIR",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="worker processes (default: REPRO_WORKERS or 1); "
            "results are bit-identical for any worker count",
        )
    show_p = sub.add_parser("show", help="re-render a saved artifact")
    show_p.add_argument("artifact", help="path to an artifact .json")

    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None:
        # Publish through the shared knob so every module sees it.
        os.environ["REPRO_WORKERS"] = str(max(args.workers, 1))
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "run-all":
        return _cmd_run_all(args)
    if args.command == "show":
        return _cmd_show(args.artifact)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
