"""Command-line interface: ``python -m repro <command>``.

Gives the repository an adoption-grade front door:

* ``python -m repro list``                  -- declared experiments
  (registry metadata only; imports no implementation module)
* ``python -m repro run fig13_los --preset quick --seed 7 --out runs/x``
  -- run one experiment, print its paper-style table, and (with
  ``--out``) write a versioned JSON artifact
* ``python -m repro run-all --preset quick --workers 4 --out runs/x``
  -- run every experiment, fanning out across processes, with a
  per-experiment pass/fail summary and a crash-safe ``manifest.json``
  ledger in the run directory
* ``python -m repro run-all --resume runs/x`` -- finish an interrupted
  or partially failed campaign: re-runs only the experiments whose
  artifacts are missing, failed, or corrupt, producing a directory
  byte-identical to an uninterrupted run (docs/ROBUSTNESS.md)
* ``python -m repro show runs/x/fig13_los.json`` -- re-render a saved
  artifact exactly as the live run printed it
* ``python -m repro serve --tags 8 --duration 2``
  -- host a live tag network: the streaming gateway
  (:mod:`repro.gateway`) over generated excitation traffic, with a
  drain-clean summary (docs/SERVICE.md)
* ``python -m repro info``                  -- library and calibration
  summary
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

__all__ = ["main"]

#: Preset choices mirrored from repro.experiments.registry.PRESET_NAMES
#: (kept literal so building the parser imports nothing).
_PRESETS = ("quick", "full", "paper")


def _render_result(result) -> str:
    """The one output format shared by ``run`` and ``show``."""
    lines = [f"==== {result.name} ====", result.render()]
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _run_one(name: str, preset: str, seed: int | None, out_dir: str | None) -> str:
    """Run one experiment; returns the text to print (raises on error)."""
    from repro.experiments import registry

    spec = registry.get_spec(name)
    overrides = {}
    if seed is not None:
        if not spec.has_param("seed"):
            raise registry.RegistryError(
                f"experiment {name!r} is deterministic and takes no --seed"
            )
        overrides["seed"] = seed
    result = spec.run(preset, **overrides)
    text = _render_result(result)
    if out_dir is not None:
        path = result.save_in(out_dir)
        text += f"\nartifact: {path}"
    return text


def _run_all_worker(
    name: str, preset: str, seed: int | None, out_dir: str | None
) -> tuple[str, bool, str]:
    """Pool entry point for ``run-all``: never raises.

    Runs in a child process; inner Monte-Carlo pools are disabled so
    parallelism lives at exactly one level.
    """
    os.environ["REPRO_WORKERS"] = "1"
    return _run_all_serial(name, preset, seed, out_dir)


def _run_all_serial(
    name: str, preset: str, seed: int | None, out_dir: str | None
) -> tuple[str, bool, str]:
    from repro.experiments import registry

    if seed is not None and not registry.get_spec(name).has_param("seed"):
        seed = None
    try:
        return name, True, _run_one(name, preset, seed, out_dir)
    except Exception as exc:  # noqa: BLE001 -- one failure must not kill the run
        return name, False, f"{type(exc).__name__}: {exc}"


def _cmd_list() -> int:
    from repro.experiments import registry

    print("experiments (paper tables and figures):")
    for spec in registry.specs():
        print(f"  {spec.name:22s} {spec.paper_ref:26s} {spec.description}")
    print(f"presets: {', '.join(_PRESETS)} (see 'run --preset')")
    return 0


def _cmd_info() -> int:
    from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
    from repro.phy.protocols import Protocol

    print("multiscatter reproduction -- Gong et al., CoNEXT 2020")
    print("calibrated LoS backscatter ranges:")
    for p in Protocol:
        link = BackscatterLink(PROTOCOL_LINK_DEFAULTS[p])
        print(f"  {p.value:8s} {link.max_range_m():5.1f} m "
              f"(tx {PROTOCOL_LINK_DEFAULTS[p].tx_power_dbm:.0f} dBm)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import registry

    preset = args.preset or "full"
    try:
        print(_run_one(args.experiment, preset, args.seed, args.out))
    except registry.UnknownExperimentError as exc:
        print(f"{exc.args[0]}; see 'python -m repro list'", file=sys.stderr)
        return 2
    except registry.RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.experiments import registry
    from repro.experiments.manifest import ManifestError, RunManifest
    from repro.sim.runner import resolve_workers

    manifest: RunManifest | None = None
    skipped: tuple[str, ...] = ()
    if args.resume is not None:
        if args.out is not None:
            print(
                "--resume and --out are mutually exclusive (resume reuses "
                "the run directory it is given)",
                file=sys.stderr,
            )
            return 2
        try:
            manifest = RunManifest.load(args.resume)
        except ManifestError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.preset is not None and args.preset != manifest.preset:
            print(
                f"--preset {args.preset!r} conflicts with the manifest's "
                f"preset {manifest.preset!r}; omit --preset when resuming",
                file=sys.stderr,
            )
            return 2
        if args.seed is not None and args.seed != manifest.seed:
            print(
                f"--seed {args.seed} conflicts with the manifest's seed "
                f"{manifest.seed}; omit --seed when resuming",
                file=sys.stderr,
            )
            return 2
        if set(manifest.names()) != set(registry.names()):
            print(
                f"manifest in {args.resume} does not match this build's "
                f"experiment catalog; re-run from scratch with --out",
                file=sys.stderr,
            )
            return 2
        from repro.core.atomicio import TMP_SUFFIX

        leftovers = sorted(Path(args.resume).glob(f"*{TMP_SUFFIX}"))
        for tmp in leftovers:
            tmp.unlink()
        if leftovers:
            print(
                f"resume: removed {len(leftovers)} leftover temporary "
                "file(s) from an interrupted save"
            )
        preset = manifest.preset
        seed = manifest.seed
        out_dir = args.resume
        names = manifest.pending()
        skipped = manifest.completed()
        if skipped:
            print(
                f"resume: {len(skipped)} of {len(manifest.names())} "
                f"experiment(s) already complete, re-running {len(names)}"
            )
        if not names:
            print("resume: nothing to do; every artifact is complete and intact")
            return 0
    else:
        preset = args.preset or "full"
        seed = args.seed
        out_dir = args.out
        names = registry.names()
        if out_dir is not None:
            manifest = RunManifest.create(
                out_dir, preset=preset, seed=seed, names=names
            )

    outcomes_by_name: dict[str, tuple[bool, str]] = {}

    def record(name: str, ok: bool, text: str) -> None:
        """Fold in one outcome, updating the crash-safe ledger."""
        outcomes_by_name[name] = (ok, text)
        if manifest is not None:
            if ok:
                manifest.mark_done(name, Path(out_dir) / f"{name}.json")
            else:
                manifest.mark_failed(name, text)

    jobs = [(name, preset, seed, out_dir) for name in names]
    workers = min(resolve_workers(args.workers), len(jobs))
    if workers <= 1:
        for job in jobs:
            record(*_run_all_serial(*job))
    else:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_all_worker, *job): job[0] for job in jobs}
            for future in as_completed(futures):
                name = futures[future]
                try:
                    record(*future.result())
                except Exception as exc:  # noqa: BLE001 -- a dead worker is an outcome
                    record(
                        name, False, f"worker crashed: {type(exc).__name__}: {exc}"
                    )

    for name in names:
        ok, text = outcomes_by_name[name]
        if ok:
            print(text)
        else:
            print(f"==== {name} ====\nFAILED: {text}")
        print()
    failures = [name for name in names if not outcomes_by_name[name][0]]
    print(f"ran {len(names)} experiments, preset {preset!r}:")
    for name in names:
        print(f"  {'PASS' if outcomes_by_name[name][0] else 'FAIL'}  {name}")
    if skipped:
        print(f"  (and {len(skipped)} already complete, skipped)")
    if failures:
        print(f"{len(failures)} failed: {', '.join(failures)}", file=sys.stderr)
        if manifest is not None:
            print(
                f"resume with: python -m repro run-all --resume {out_dir}",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    import numpy as np

    from repro.gateway import (
        AsyncExcitationSource,
        Backpressure,
        Gateway,
        GatewayConfig,
        GatewayStats,
        Subscriber,
    )
    from repro.phy.protocols import Protocol
    from repro.sim.traffic import ExcitationSource

    seed = args.seed if args.seed is not None else 0
    config = GatewayConfig(
        seed=seed,
        keepalive_timeout_s=args.keepalive_timeout,
        queue_maxlen=args.queue_maxlen,
        decode_batch=args.decode_batch,
        decode_workers=args.decode_workers,
        drain_timeout_s=args.drain_timeout,
    )
    policy = Backpressure(args.policy)

    async def _serve() -> tuple[GatewayStats, list[int], list[str]]:
        gateway = Gateway(config)
        sources = [
            ExcitationSource(protocol=p, rate_pkts=args.rate, periodic=False)
            for p in Protocol
        ]
        source = AsyncExcitationSource(
            sources,
            duration_s=args.duration,
            rng=np.random.default_rng(seed),
            time_scale=args.time_scale,
            max_packets=args.max_packets,
        )
        loop = asyncio.get_running_loop()
        try:
            # Ctrl-C asks the air loop to finish the current packet
            # and drain, instead of tearing the event loop down.
            loop.add_signal_handler(signal.SIGINT, gateway.request_stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            pass
        for i in range(args.tags):
            await gateway.register_tag(f"tag-{i:03d}")
        delivered = [0] * args.subscribers

        async def _consume(index: int, sub: Subscriber) -> None:
            # End of stream is StopAsyncIteration inside the async for;
            # real consumer failures must reach the gather below.
            async for _event in sub:
                delivered[index] += 1

        consumers = [
            asyncio.ensure_future(_consume(j, gateway.subscribe(f"sub-{j}", policy=policy)))
            for j in range(args.subscribers)
        ]
        await gateway.assign_carrier(
            source.observed_rates(), goal_kbps=args.goal_kbps
        )
        stats = await gateway.serve(source)
        results = await asyncio.gather(*consumers, return_exceptions=True)
        errors = [
            f"sub-{j}: {type(r).__name__}: {r}"
            for j, r in enumerate(results)
            if isinstance(r, BaseException)
            and not isinstance(r, asyncio.CancelledError)
        ]
        return stats, delivered, errors

    stats, delivered, consumer_errors = asyncio.run(_serve())
    p50_ms = stats.latency_percentile_s(50) * 1e3
    p99_ms = stats.latency_percentile_s(99) * 1e3
    print(
        f"gateway: {args.tags} tag(s), {args.subscribers} subscriber(s), "
        f"policy {policy.value}"
    )
    print(
        f"  packets {stats.n_packets}  backscattered {stats.n_backscattered}  "
        f"collisions {stats.n_collisions}"
    )
    print(
        f"  decode latency p50 {p50_ms:.2f} ms  p99 {p99_ms:.2f} ms  "
        f"throughput {stats.packets_per_s():.1f} pkt/s"
    )
    print(f"  delivered per subscriber: {delivered}")
    print(
        f"  drops {stats.n_dropped_events}  tag evictions "
        f"{stats.n_tag_evictions}  subscriber evictions "
        f"{stats.n_subscriber_evictions}"
    )
    print(f"  drained clean: {stats.drained_clean}")
    from repro.core import loopwatch

    if loopwatch.enabled():
        print(
            f"  loopwatch: {stats.loopwatch_violations} violation(s), "
            f"{stats.loopwatch_slow_callbacks} slow callback(s), "
            f"max lag {stats.loopwatch_max_lag_s * 1e3:.2f} ms"
        )
    for err in consumer_errors:
        print(f"serve: consumer failed: {err}", file=sys.stderr)
    if args.require_clean and (
        not stats.drained_clean
        or stats.n_dropped_events
        or stats.n_tag_evictions
        or stats.n_subscriber_evictions
        or stats.loopwatch_violations
        or consumer_errors
    ):
        print("serve: --require-clean violated", file=sys.stderr)
        return 1
    return 0


def _cmd_show(path: str) -> int:
    from repro.experiments.artifacts import ArtifactError, ExperimentResult

    try:
        result = ExperimentResult.load(path)
    except FileNotFoundError:
        print(f"no such artifact: {path}", file=sys.stderr)
        return 2
    except ArtifactError as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return 2
    print(_render_result(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="multiscatter: multiprotocol backscatter reproduction",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list declared experiments (fast, no NumPy)")
    sub.add_parser("info", help="library and calibration summary")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    run_all_p = sub.add_parser("run-all", help="run every experiment")
    for p in (run_p, run_all_p):
        p.add_argument(
            "--preset",
            choices=_PRESETS,
            default=None,
            help="parameter preset (default: full; with --resume, the "
            "manifest's preset)",
        )
        p.add_argument(
            "--seed",
            type=int,
            default=None,
            metavar="N",
            help="override the spec seed (seeded experiments only)",
        )
        p.add_argument(
            "--out",
            default=None,
            metavar="DIR",
            help="write <experiment>.json artifacts under DIR",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="worker processes (default: REPRO_WORKERS or 1); "
            "results are bit-identical for any worker count",
        )
    run_all_p.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="finish an interrupted run: re-run only experiments whose "
        "artifacts in DIR are missing, failed, or corrupt "
        "(DIR must hold a manifest.json from 'run-all --out')",
    )
    show_p = sub.add_parser("show", help="re-render a saved artifact")
    show_p.add_argument("artifact", help="path to an artifact .json")
    serve_p = sub.add_parser(
        "serve", help="host a live tag network (streaming gateway)"
    )
    serve_p.add_argument(
        "--tags", type=int, default=8, metavar="N", help="concurrent tags (default 8)"
    )
    serve_p.add_argument(
        "--subscribers", type=int, default=1, metavar="M",
        help="event-stream subscribers (default 1)",
    )
    serve_p.add_argument(
        "--duration", type=float, default=2.0, metavar="S",
        help="excitation schedule length in seconds (default 2.0)",
    )
    serve_p.add_argument(
        "--rate", type=float, default=100.0, metavar="PKTS",
        help="per-protocol excitation packet rate (default 100/s)",
    )
    serve_p.add_argument(
        "--max-packets", type=int, default=None, metavar="N",
        help="stop after N excitation packets",
    )
    serve_p.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="gateway + traffic seed (default 0)",
    )
    serve_p.add_argument(
        "--policy", choices=("block", "drop_oldest", "disconnect"),
        default="block", help="subscriber backpressure policy (default block)",
    )
    serve_p.add_argument(
        "--queue-maxlen", type=int, default=64, metavar="N",
        help="subscriber queue bound (default 64)",
    )
    serve_p.add_argument(
        "--decode-batch", type=int, default=1, metavar="N",
        help="pending receptions per grouped decode dispatch (default 1)",
    )
    serve_p.add_argument(
        "--decode-workers", type=int, default=0, metavar="N",
        help="decode worker processes (0 = decode inline on the air "
        "loop; output is bit-identical at every worker count)",
    )
    serve_p.add_argument(
        "--time-scale", type=float, default=0.0, metavar="X",
        help="wall seconds per schedule second (0 = fast-forward, 1 = real time)",
    )
    serve_p.add_argument(
        "--goal-kbps", type=float, default=0.0, metavar="KBPS",
        help="application goodput goal for carrier assignment (default 0)",
    )
    serve_p.add_argument(
        "--keepalive-timeout", type=float, default=5.0, metavar="S",
        help="evict tags silent for S seconds (default 5)",
    )
    serve_p.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="S",
        help="shutdown grace for subscriber backlogs (default 5)",
    )
    serve_p.add_argument(
        "--require-clean", action="store_true",
        help="exit 1 unless the run drained cleanly with zero drops "
        "and zero evictions (CI smoke mode)",
    )

    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None:
        from repro.sim.runner import validate_bounds

        try:
            validate_bounds(n_workers=args.workers, where="--workers")
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        # Publish through the shared knob so every module sees it.
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if getattr(args, "seed", None) is not None:
        from repro.sim.runner import validate_bounds

        try:
            validate_bounds(seed=args.seed, where="--seed")
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if getattr(args, "decode_workers", 0) < 0:
        print("--decode-workers must be >= 0", file=sys.stderr)
        return 2
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "run-all":
        return _cmd_run_all(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "show":
        return _cmd_show(args.artifact)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
