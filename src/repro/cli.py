"""Command-line interface: ``python -m repro <command>``.

Gives the repository an adoption-grade front door:

* ``python -m repro list``                -- available experiments
* ``python -m repro run fig13_los``      -- run one experiment, print
  its paper-style table
* ``python -m repro run-all``            -- run everything (quick
  parameters)
* ``python -m repro info``               -- library and calibration
  summary
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys

__all__ = ["main", "EXPERIMENTS"]

#: Experiment name -> module path (all expose run() / format_result()).
EXPERIMENTS = {
    name: f"repro.experiments.{name}"
    for name in (
        "fig04_rectifier",
        "fig05_envelope_id",
        "fig07_ordered",
        "fig08_sampling",
        "fig09_baseline_flaws",
        "fig12_tradeoffs",
        "fig13_los",
        "fig14_nlos",
        "fig15_occlusion",
        "fig16_collisions",
        "fig17_refmod",
        "fig18_diversity",
        "validation_ber",
        "table2_resources",
        "table3_power",
        "table4_energy",
        "table5_idpower",
    )
}


def _run_experiment(name: str) -> int:
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; see 'python -m repro list'",
              file=sys.stderr)
        return 2
    module = importlib.import_module(EXPERIMENTS[name])
    result = module.run()
    print(f"==== {result.name} ====")
    print(module.format_result(result))
    for note in result.notes:
        print(f"  note: {note}")
    return 0


def _cmd_list() -> int:
    print("experiments (paper tables and figures):")
    for name in EXPERIMENTS:
        module = importlib.import_module(EXPERIMENTS[name])
        doc = (module.__doc__ or "").strip().splitlines()
        print(f"  {name:22s} {doc[0] if doc else ''}")
    return 0


def _cmd_info() -> int:
    from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
    from repro.phy.protocols import Protocol

    print("multiscatter reproduction -- Gong et al., CoNEXT 2020")
    print("calibrated LoS backscatter ranges:")
    for p in Protocol:
        link = BackscatterLink(PROTOCOL_LINK_DEFAULTS[p])
        print(f"  {p.value:8s} {link.max_range_m():5.1f} m "
              f"(tx {PROTOCOL_LINK_DEFAULTS[p].tx_power_dbm:.0f} dBm)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="multiscatter: multiprotocol backscatter reproduction",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("info", help="library and calibration summary")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    run_all_p = sub.add_parser("run-all", help="run every experiment")
    for p in (run_p, run_all_p):
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="Monte-Carlo worker processes (default: REPRO_WORKERS or 1); "
            "results are bit-identical for any worker count",
        )

    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None:
        # Publish through the shared knob so every module sees it.
        os.environ["REPRO_WORKERS"] = str(max(args.workers, 1))
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _run_experiment(args.experiment)
    if args.command == "run-all":
        status = 0
        for name in EXPERIMENTS:
            status |= _run_experiment(name)
            print()
        return status
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
