"""Protocol identities and per-protocol timing constants.

The four excitation protocols multiscatter identifies (paper §2.2) differ
in preamble structure, symbol timing, and modulation family.  This module
centralizes those constants so the tag (templates, overlay modulation)
and the experiment harness agree on one source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Protocol(enum.Enum):
    """The excitation protocols a multiscatter tag can identify."""

    WIFI_B = "802.11b"
    WIFI_N = "802.11n"
    BLE = "BLE"
    ZIGBEE = "ZigBee"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ProtocolInfo:
    """Static facts about one protocol's PHY.

    Attributes
    ----------
    protocol:
        Which protocol this record describes.
    symbol_rate_hz:
        Rate of the smallest unit overlay modulation operates on
        (802.11b: 1 Msym/s DSSS symbols, 802.11n: 250 ksym/s OFDM
        symbols, BLE: 1 Msym/s bits, ZigBee: 62.5 ksym/s PN symbols).
    chip_rate_hz:
        Chip rate of the spread or shaped waveform (equals the symbol
        rate when the protocol does not spread).
    preamble_us:
        Duration of the standard packet-detection field used as the
        identification template (paper §2.2: 802.11b long preamble
        144 us, BLE preamble 8 us, ...).
    extended_window_us:
        Longest identification window the protocol supports (paper
        §2.3.2: BLE extends over the advertising access address to
        40 us; 802.11n over HT-STF/HT-LTF).
    bandwidth_hz:
        Occupied bandwidth of one channel.
    bits_per_symbol:
        Nominal productive bits carried by one overlay symbol unit at
        the base rate used in the paper (1 Mbps 11b, MCS0 11n, LE 1M,
        250 kbps ZigBee).
    """

    protocol: Protocol
    symbol_rate_hz: float
    chip_rate_hz: float
    preamble_us: float
    extended_window_us: float
    bandwidth_hz: float
    bits_per_symbol: int


PROTOCOL_INFO: dict[Protocol, ProtocolInfo] = {
    Protocol.WIFI_B: ProtocolInfo(
        protocol=Protocol.WIFI_B,
        symbol_rate_hz=1e6,
        chip_rate_hz=11e6,
        preamble_us=144.0,
        extended_window_us=144.0,
        bandwidth_hz=22e6,
        bits_per_symbol=1,
    ),
    Protocol.WIFI_N: ProtocolInfo(
        protocol=Protocol.WIFI_N,
        symbol_rate_hz=250e3,
        chip_rate_hz=20e6,
        preamble_us=16.0,  # L-STF + L-LTF
        extended_window_us=40.0,  # + L-SIG, HT-SIG, HT-STF, HT-LTF
        bandwidth_hz=20e6,
        bits_per_symbol=26,  # MCS0 data bits per OFDM symbol
    ),
    Protocol.BLE: ProtocolInfo(
        protocol=Protocol.BLE,
        symbol_rate_hz=1e6,
        chip_rate_hz=1e6,
        preamble_us=8.0,
        extended_window_us=40.0,  # preamble + advertising access address
        bandwidth_hz=2e6,
        bits_per_symbol=1,
    ),
    Protocol.ZIGBEE: ProtocolInfo(
        protocol=Protocol.ZIGBEE,
        symbol_rate_hz=62.5e3,
        chip_rate_hz=2e6,
        preamble_us=128.0,  # 8 zero symbols of 16 us
        extended_window_us=128.0,
        bandwidth_hz=2e6,
        bits_per_symbol=4,
    ),
}

#: 2.4 GHz ISM-band carrier frequency used throughout the paper.
CARRIER_FREQ_HZ = 2.4e9

#: Excitation packet rates measured/used in the paper's evaluation
#: (§3 experimental setup and §4.1.4).
DEFAULT_PACKET_RATES = {
    Protocol.WIFI_B: 2000.0,
    Protocol.WIFI_N: 2000.0,
    Protocol.BLE: 70.0,
    Protocol.ZIGBEE: 20.0,
}
