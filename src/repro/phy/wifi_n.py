"""802.11n 20 MHz OFDM physical layer (mixed-mode format).

Implements the greenfield-free frame the paper's excitation uses:

* L-STF (8 us) + L-LTF (8 us) + L-SIG (4 us)        -- legacy preamble
* HT-SIG (8 us) + HT-STF (4 us) + HT-LTF (4 us)     -- HT preamble
* HT data symbols (4 us each), single spatial stream

The full single-stream 20 MHz MCS ladder (0-7) is supported: BPSK,
QPSK, 16-QAM and 64-QAM with BCC rates 1/2, 2/3, 3/4 and 5/6
(puncturing + erasure-aware Viterbi).  The paper's excitation uses
MCS0; Fig 17's reference-symbol sweep uses MCS0/1/3.

The receiver is a standard coherent OFDM chain: HT-LTF channel
estimation, per-symbol equalization, pilot common-phase tracking,
constellation demapping, HT deinterleaving, Viterbi, descrambling.
The pilot phase corrector deliberately only tracks phase modulo pi
(slew-limited), as a real PLL-based tracker cannot instantaneously
follow a pi jump -- this is what lets a tag's full-symbol phase flip
(overlay modulation, §2.4) survive into the decoded bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from types import ModuleType
from typing import Sequence

import numpy as np

from repro import perf
from repro.core import contracts
from repro.core.backend import get_backend
from repro.phy import bits as bitlib
from repro.phy import convcode, viterbi
from repro.phy.batch import run_grouped
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.types import Hertz

__all__ = [
    "WifiNConfig",
    "modulate",
    "demodulate",
    "modulate_batch",
    "demodulate_batch",
    "WifiNDecodeResult",
    "estimate_cfo",
    "N_FFT",
    "CP_LEN",
    "SYMBOL_LEN",
    "HT_DATA_CARRIERS",
]

N_FFT = 64
CP_LEN = 16
SYMBOL_LEN = N_FFT + CP_LEN  # 80 samples = 4 us at 20 Msps
SAMPLE_RATE = 20e6

#: Pilot subcarrier indices and base values (802.11-2016 §17.3.5.9).
PILOT_CARRIERS = np.array([-21, -7, 7, 21])
PILOT_VALUES = np.array([1.0, 1.0, 1.0, -1.0])

#: HT 20 MHz data subcarriers: -28..28 minus DC and pilots (52 total).
HT_DATA_CARRIERS = np.array(
    [k for k in range(-28, 29) if k != 0 and k not in (-21, -7, 7, 21)]
)

#: Legacy (L-SIG) data subcarriers: -26..26 minus DC and pilots (48).
LEGACY_DATA_CARRIERS = np.array(
    [k for k in range(-26, 27) if k != 0 and k not in (-21, -7, 7, 21)]
)

# L-STF frequency-domain sequence on subcarriers -26..26.
_S26 = np.sqrt(13.0 / 6.0) * np.array(
    [0, 0, 1 + 1j, 0, 0, 0, -1 - 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, -1 - 1j, 0, 0, 0,
     -1 - 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, 0, 0, 0, 0, -1 - 1j, 0, 0, 0, -1 - 1j,
     0, 0, 0, 1 + 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, 1 + 1j, 0, 0],
    dtype=complex,
)

# L-LTF frequency-domain sequence on subcarriers -26..26.
_L26 = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1,
     1, 1, 1, 1, 0, 1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1,
     -1, -1, 1, -1, 1, -1, 1, 1, 1, 1],
    dtype=complex,
)

# HT-LTF on subcarriers -28..28 (L-LTF extended by {1,1} / {-1,-1}).
_HTLTF28 = np.concatenate([np.array([1.0, 1.0]), _L26, np.array([-1.0, -1.0])]).astype(
    complex
)

#: Pilot polarity sequence p_0..p_126 (802.11-2016 equation 17-25).
PILOT_POLARITY = np.array(
    [1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1, -1, -1, 1, 1, -1,
     1, 1, -1, 1, 1, 1, 1, 1, 1, -1, 1, 1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1,
     -1, -1, -1, 1, -1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
     -1, 1, -1, 1, -1, 1, 1, -1, -1, -1, 1, 1, -1, -1, -1, -1, 1, -1, -1, 1,
     -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, -1, 1, 1, -1,
     1, -1, 1, 1, 1, -1, -1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1]
)

#: HT modulation-and-coding sets (single stream, 20 MHz):
#: mcs -> (constellation, coded bits/subcarrier, BCC rate).
_MCS_TABLE = {
    0: ("BPSK", 1, "1/2"),
    1: ("QPSK", 2, "1/2"),
    2: ("QPSK", 2, "3/4"),
    3: ("16QAM", 4, "1/2"),
    4: ("16QAM", 4, "3/4"),
    5: ("64QAM", 6, "2/3"),
    6: ("64QAM", 6, "3/4"),
    7: ("64QAM", 6, "5/6"),
}

#: Numerator/denominator per coding-rate string.
_RATE_FRACTION = {"1/2": (1, 2), "2/3": (2, 3), "3/4": (3, 4), "5/6": (5, 6)}


@dataclass(frozen=True)
class WifiNConfig:
    """Modulator configuration for the HT data portion.

    ``mcs`` selects the single-stream 20 MHz MCS (0-7).
    ``scrambler_seed`` is the frame-synchronous scrambler initial
    state.
    """

    mcs: int = 0
    scrambler_seed: int = 0x5D

    def __post_init__(self) -> None:
        if self.mcs not in _MCS_TABLE:
            raise ValueError(f"unsupported MCS {self.mcs}; supported: {sorted(_MCS_TABLE)}")

    @property
    def constellation(self) -> str:
        return _MCS_TABLE[self.mcs][0]

    @property
    def n_bpsc(self) -> int:
        """Coded bits per subcarrier."""
        return _MCS_TABLE[self.mcs][1]

    @property
    def coding_rate(self) -> str:
        """BCC rate string ("1/2", "2/3", "3/4", "5/6")."""
        return _MCS_TABLE[self.mcs][2]

    @property
    def n_cbps(self) -> int:
        """Coded bits per OFDM symbol (52 data carriers)."""
        return 52 * self.n_bpsc

    @property
    def n_dbps(self) -> int:
        """Data bits per OFDM symbol."""
        num, den = _RATE_FRACTION[self.coding_rate]
        return self.n_cbps * num // den

    @property
    def sample_rate(self) -> Hertz:
        return SAMPLE_RATE


# ----------------------------------------------------------------------
# constellation mapping
# ----------------------------------------------------------------------
#: Gray-coded axis levels indexed by the packed axis bits (b0 most
#: significant): 16QAM {00,01,10,11} -> {-3,-1,3,1}, 64QAM
#: {000..111} -> {-7,-5,-1,-3,7,5,1,3}.
_QAM16_LEVELS = np.array([-3.0, -1.0, 3.0, 1.0])
_QAM64_LEVELS = np.array([-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0])


def _map_bits(bits: np.ndarray, constellation: str) -> np.ndarray:
    """Gray-map coded bits to constellation points (unit average power)."""
    b = np.asarray(bits, dtype=np.uint8)
    if constellation == "BPSK":
        return 2.0 * b.astype(float) - 1.0 + 0j
    if constellation == "QPSK":
        pairs = b.reshape(-1, 2)
        i = (2.0 * pairs[:, 0] - 1.0) / np.sqrt(2.0)
        q = (2.0 * pairs[:, 1] - 1.0) / np.sqrt(2.0)
        return i + 1j * q
    if constellation == "16QAM":
        quads = b.reshape(-1, 4).astype(np.intp)
        i = _QAM16_LEVELS[2 * quads[:, 0] + quads[:, 1]]
        q = _QAM16_LEVELS[2 * quads[:, 2] + quads[:, 3]]
        return (i + 1j * q) / np.sqrt(10.0)
    if constellation == "64QAM":
        groups = b.reshape(-1, 6).astype(np.intp)
        i = _QAM64_LEVELS[4 * groups[:, 0] + 2 * groups[:, 1] + groups[:, 2]]
        q = _QAM64_LEVELS[4 * groups[:, 3] + 2 * groups[:, 4] + groups[:, 5]]
        return (i + 1j * q) / np.sqrt(42.0)
    raise ValueError(f"unknown constellation {constellation}")


def _demap_symbols(points: np.ndarray, constellation: str) -> np.ndarray:
    """Hard-decision demap back to coded bits."""
    pts = np.asarray(points, dtype=complex)
    if constellation == "BPSK":
        return (pts.real > 0).astype(np.uint8)
    if constellation == "QPSK":
        out = np.empty(pts.size * 2, dtype=np.uint8)
        out[0::2] = pts.real > 0
        out[1::2] = pts.imag > 0
        return out

    if constellation == "16QAM":
        def axis_bits(v: np.ndarray) -> np.ndarray:
            scaled = v * np.sqrt(10.0)
            b0 = (scaled > 0).astype(np.uint8)
            b1 = (np.abs(scaled) < 2.0).astype(np.uint8)
            return np.stack([b0, b1], axis=1)

        ib = axis_bits(pts.real)
        qb = axis_bits(pts.imag)
        return np.concatenate([ib, qb], axis=1).ravel()

    # 64QAM: per-axis Gray decisions at thresholds 0 / +-4 / +-2,6.
    def axis_bits64(v: np.ndarray) -> np.ndarray:
        scaled = v * np.sqrt(42.0)
        b0 = (scaled > 0).astype(np.uint8)
        b1 = (np.abs(scaled) < 4.0).astype(np.uint8)
        b2 = ((np.abs(scaled) > 2.0) & (np.abs(scaled) < 6.0)).astype(np.uint8)
        return np.stack([b0, b1, b2], axis=1)

    ib = axis_bits64(pts.real)
    qb = axis_bits64(pts.imag)
    return np.concatenate([ib, qb], axis=1).ravel()


# ----------------------------------------------------------------------
# HT interleaver (20 MHz, one spatial stream)
# ----------------------------------------------------------------------
def _demap_soft(
    points: np.ndarray, constellation: str, csi: np.ndarray | None = None
) -> np.ndarray:
    """Max-log LLRs per coded bit (positive = bit 1 more likely).

    ``csi`` holds per-subcarrier |H|^2 weights: equalization amplifies
    noise on faded subcarriers, so their LLRs must count less.
    """
    pts = np.asarray(points, dtype=complex)
    w = np.ones(pts.size) if csi is None else np.asarray(csi, dtype=float)
    if constellation == "BPSK":
        return 2.0 * pts.real * w
    if constellation == "QPSK":
        out = np.empty(pts.size * 2)
        out[0::2] = np.sqrt(2.0) * pts.real * w
        out[1::2] = np.sqrt(2.0) * pts.imag * w
        return out

    def axis_llrs(v: np.ndarray, levels: int) -> np.ndarray:
        if levels == 4:  # 16QAM axis, scaled to integer grid
            s = v * np.sqrt(10.0)
            return np.stack([s, 2.0 - np.abs(s)], axis=1)
        s = v * np.sqrt(42.0)  # 64QAM axis
        return np.stack([s, 4.0 - np.abs(s), 2.0 - np.abs(np.abs(s) - 4.0)], axis=1)

    n_axis = 4 if constellation == "16QAM" else 8
    i_llrs = axis_llrs(pts.real, n_axis)
    q_llrs = axis_llrs(pts.imag, n_axis)
    llrs = np.concatenate([i_llrs, q_llrs], axis=1)
    if csi is not None:
        llrs = llrs * np.asarray(csi, dtype=float)[:, None]
    return llrs.ravel()


@lru_cache(maxsize=16)
def _ht_permutation(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """HT interleaver output index for each input index k (§20.3.11.8.2)."""
    n_col = 13
    n_row = 4 * n_bpsc
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = n_row * (k % n_col) + k // n_col
    j = s * (i // s) + (i + n_cbps - (n_col * i) // n_cbps) % s
    return j


@contracts.shapes("n_cbps -> n_cbps")
def ht_interleave(bits: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Interleave one OFDM symbol's coded bits."""
    arr = np.asarray(bits, dtype=np.uint8)
    n_cbps = 52 * n_bpsc
    if arr.size != n_cbps:
        raise ValueError(f"expected {n_cbps} bits, got {arr.size}")
    perm = _ht_permutation(n_cbps, n_bpsc)
    out = np.empty_like(arr)
    out[perm] = arr
    return out


@contracts.shapes("n_cbps -> n_cbps")
def ht_deinterleave(bits: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Inverse of :func:`ht_interleave`."""
    arr = np.asarray(bits, dtype=np.uint8)
    perm = _ht_permutation(52 * n_bpsc, n_bpsc)
    return arr[perm]


# ----------------------------------------------------------------------
# OFDM symbol construction
# ----------------------------------------------------------------------
def _freq_to_time(carriers: dict[int, complex]) -> np.ndarray:
    """64-point IFFT of a sparse subcarrier map (no CP)."""
    spec = np.zeros(N_FFT, dtype=complex)
    for k, v in carriers.items():
        spec[k % N_FFT] = v
    return np.fft.ifft(spec) * N_FFT / np.sqrt(52.0)


def _ofdm_symbol(data_points: np.ndarray, carriers: np.ndarray, pilot_polarity: float) -> np.ndarray:
    """One 80-sample OFDM symbol with CP, pilots included."""
    spec = np.zeros(N_FFT, dtype=complex)
    spec[np.asarray(carriers) % N_FFT] = data_points
    spec[PILOT_CARRIERS % N_FFT] = PILOT_VALUES * pilot_polarity
    body = np.fft.ifft(spec) * N_FFT / np.sqrt(52.0)
    return np.concatenate([body[-CP_LEN:], body])


@lru_cache(maxsize=1)
def _l_stf() -> np.ndarray:
    """Legacy short training field: 160 samples (10 x 16-sample periods)."""
    spec = {k: _S26[k + 26] for k in range(-26, 27)}
    body = _freq_to_time(spec)
    period = np.concatenate([body, body, body[:32]])
    return period


@lru_cache(maxsize=1)
def _l_ltf() -> np.ndarray:
    """Legacy long training field: 32-sample GI2 + 2 x 64 samples."""
    spec = {k: _L26[k + 26] for k in range(-26, 27)}
    body = _freq_to_time(spec)
    return np.concatenate([body[-32:], body, body])


@lru_cache(maxsize=1)
def _ht_ltf() -> np.ndarray:
    """HT long training field: one guarded symbol over 57 carriers."""
    spec = {k: _HTLTF28[k + 28] for k in range(-28, 29)}
    body = _freq_to_time(spec)
    return np.concatenate([body[-CP_LEN:], body])


def _ht_stf() -> np.ndarray:
    """HT short training field: 4 us (first half of an L-STF)."""
    return _l_stf()[:80]


def _legacy_bpsk_symbol(bits24: np.ndarray, *, qbpsk: bool = False) -> np.ndarray:
    """Legacy-format signaling symbol (L-SIG / HT-SIG): 24 info bits."""
    coded = convcode.encode(bits24)
    from repro.phy.interleaver import interleave as legacy_interleave

    inter = legacy_interleave(coded, n_cbps=48, n_bpsc=1)
    points = _map_bits(inter, "BPSK")
    if qbpsk:
        points = points * 1j  # HT-SIG uses 90-degree rotated BPSK
    return _ofdm_symbol(points, LEGACY_DATA_CARRIERS, pilot_polarity=1.0)


@lru_cache(maxsize=64)
def _l_sig(rate_bits: int, length: int) -> np.ndarray:
    """L-SIG symbol: RATE(4) RSVD(1) LENGTH(12) PARITY(1) TAIL(6)."""
    bits = np.concatenate(
        [
            bitlib.bits_from_int(rate_bits, 4),
            np.zeros(1, np.uint8),
            bitlib.bits_from_int(length & 0xFFF, 12),
            np.zeros(1, np.uint8),  # parity placeholder, fixed below
            np.zeros(6, np.uint8),
        ]
    )
    bits[17] = bits[:17].sum() % 2  # even parity over first 17 bits
    return _legacy_bpsk_symbol(bits)


@lru_cache(maxsize=64)
def _ht_sig(mcs: int, length: int) -> np.ndarray:
    """HT-SIG (2 QBPSK symbols); CRC field simplified to zeros."""
    bits = np.concatenate(
        [
            bitlib.bits_from_int(mcs & 0x7F, 7),
            np.zeros(1, np.uint8),  # CBW 20/40
            bitlib.bits_from_int(length & 0xFFFF, 16),
            np.zeros(24, np.uint8),  # smoothing..CRC..tail, simplified
        ]
    )
    sym1 = _legacy_bpsk_symbol(bits[:24], qbpsk=True)
    sym2 = _legacy_bpsk_symbol(bits[24:], qbpsk=True)
    return np.concatenate([sym1, sym2])


# ----------------------------------------------------------------------
# modulator
# ----------------------------------------------------------------------
@contracts.dtypes(np.uint8)
def modulate(
    payload: bytes | np.ndarray,
    config: WifiNConfig | None = None,
    *,
    data_bits: np.ndarray | None = None,
) -> Waveform:
    """Modulate a PSDU into an 802.11n waveform.

    ``payload`` is the PSDU (bytes or bit array).  Alternatively pass
    ``data_bits`` to control the entire data-bit stream (SERVICE +
    PSDU + tail + pad) directly -- the overlay carrier generator uses
    this to align crafted bit groups with OFDM symbol boundaries.
    """
    perf.dispatch("wifi_n.modulate", 1, batched=False)
    cfg = config or WifiNConfig()
    if data_bits is None:
        if isinstance(payload, (bytes, bytearray)):
            psdu = bitlib.bits_from_bytes(payload)
        else:
            psdu = np.asarray(payload, dtype=np.uint8)
        stream = np.concatenate([np.zeros(16, np.uint8), psdu, np.zeros(6, np.uint8)])
    else:
        stream = np.asarray(data_bits, dtype=np.uint8)
        psdu = stream[16:]

    n_sym = max(1, int(np.ceil(stream.size / cfg.n_dbps)))
    pad = n_sym * cfg.n_dbps - stream.size
    stream = np.concatenate([stream, np.zeros(pad, np.uint8)])

    scrambled = bitlib.scramble_80211_frame(stream, seed=cfg.scrambler_seed)
    coded = convcode.puncture(convcode.encode(scrambled), cfg.coding_rate)

    data_samples = []
    for s in range(n_sym):
        block = coded[s * cfg.n_cbps : (s + 1) * cfg.n_cbps]
        inter = ht_interleave(block, cfg.n_bpsc)
        points = _map_bits(inter, cfg.constellation)
        polarity = PILOT_POLARITY[(s + 3) % PILOT_POLARITY.size]
        data_samples.append(_ofdm_symbol(points, HT_DATA_CARRIERS, polarity))

    preamble = np.concatenate(
        [
            _l_stf(),
            _l_ltf(),
            _l_sig(0b1011, max(1, psdu.size // 8)),
            _ht_sig(cfg.mcs, max(1, psdu.size // 8)),
            _ht_stf(),
            _ht_ltf(),
        ]
    )
    iq = np.concatenate([preamble] + data_samples)
    payload_start = preamble.size
    return Waveform(
        iq=iq,
        sample_rate=cfg.sample_rate,
        annotations={
            "protocol": Protocol.WIFI_N,
            "mcs": cfg.mcs,
            "payload_start": payload_start,
            "samples_per_symbol": SYMBOL_LEN,
            "n_payload_symbols": n_sym,
            "n_stream_bits": stream.size,
            "scrambler_seed": cfg.scrambler_seed,
            "ht_ltf_start": payload_start - SYMBOL_LEN,
        },
    )


# ----------------------------------------------------------------------
# receiver
# ----------------------------------------------------------------------
@dataclass
class WifiNDecodeResult:
    """Receiver output.

    ``data_bits`` is the full descrambled data stream (SERVICE + PSDU +
    tail + pad); ``psdu_bits`` strips the 16-bit SERVICE field;
    ``symbol_bits`` groups ``data_bits`` by originating OFDM symbol --
    the overlay decoder's comparison unit (§2.4, 802.11n case).
    """

    data_bits: np.ndarray
    psdu_bits: np.ndarray
    symbol_bits: list[np.ndarray]
    cpe_per_symbol: np.ndarray


def estimate_cfo(wave: Waveform) -> Hertz:
    """Carrier-frequency-offset estimate from the training fields.

    Coarse stage: L-STF 16-sample periodicity (unambiguous to
    +-625 kHz); fine stage: L-LTF 64-sample repetition (+-156 kHz).
    Returns the estimated CFO in Hz.
    """
    x = wave.iq
    fs = wave.sample_rate
    if x.size < 320:
        return 0.0
    # Coarse: autocorrelation at lag 16 over the L-STF (samples 16..144).
    stf = x[16:144]
    c16 = np.sum(stf * np.conj(x[0:128]))
    coarse = np.angle(c16) / (2.0 * np.pi * 16.0 / fs)
    # Fine: the two L-LTF bodies at 192 and 256.
    b1 = x[192:256]
    b2 = x[256:320]
    c64 = np.sum(b2 * np.conj(b1))
    fine = np.angle(c64) / (2.0 * np.pi * 64.0 / fs)
    # Combine: fine is accurate but aliases every fs/64; unwrap it to
    # the nearest alias of the coarse estimate.
    alias = fs / 64.0
    k = np.round((coarse - fine) / alias)
    return float(fine + k * alias)


def _estimate_channel(wave: Waveform) -> np.ndarray:
    """Channel estimate on the 56 HT carriers from the HT-LTF."""
    start = wave.annotations["ht_ltf_start"] + CP_LEN
    body = wave.iq[start : start + N_FFT]
    spec = np.fft.fft(body) * np.sqrt(52.0) / N_FFT
    h = np.zeros(N_FFT, dtype=complex)
    ks = np.arange(-28, 29)
    nz = _HTLTF28 != 0
    idx = ks[nz] % N_FFT
    h[idx] = spec[idx] / _HTLTF28[nz]
    return h


def demodulate(
    wave: Waveform,
    *,
    n_psdu_bits: int | None = None,
    correct_cfo: bool = True,
    soft: bool = False,
) -> WifiNDecodeResult:
    """Coherent 802.11n receive chain (timing from frame annotations).

    ``correct_cfo`` runs the standard two-stage (L-STF coarse + L-LTF
    fine) frequency-offset estimator and derotates the waveform before
    channel estimation.  ``soft`` switches to max-log LLR demapping and
    soft-decision Viterbi (~2 dB gain over hard decisions).
    """
    perf.dispatch("wifi_n.demodulate", 1, batched=False)
    ann = wave.annotations
    if ann.get("protocol") is not Protocol.WIFI_N:
        raise ValueError("waveform is not annotated as 802.11n")
    cfg = WifiNConfig(mcs=ann["mcs"], scrambler_seed=ann.get("scrambler_seed", 0x5D))
    if correct_cfo:
        cfo = estimate_cfo(wave)
        if abs(cfo) > 1.0:
            wave = wave.frequency_shifted(-cfo)
    h = _estimate_channel(wave)
    # Guard against nulls.
    h = np.where(np.abs(h) < 1e-12, 1e-12, h)

    start = ann["payload_start"]
    n_sym = ann["n_payload_symbols"]
    coded = []
    soft_blocks = []
    cpes = np.zeros(n_sym)
    prev_cpe = 0.0
    for s in range(n_sym):
        seg = wave.iq[start + s * SYMBOL_LEN : start + (s + 1) * SYMBOL_LEN]
        if seg.size < SYMBOL_LEN:
            seg = np.pad(seg, (0, SYMBOL_LEN - seg.size))
        spec = np.fft.fft(seg[CP_LEN:]) * np.sqrt(52.0) / N_FFT
        eq = spec / h
        # Pilot-based common phase error.  The correction is tracked
        # continuously but only within its modulo-pi class: the applied
        # value is the representative of angle(corr) + k*pi closest to
        # the previous symbol's correction.  Slow drift (residual CFO)
        # is followed without the sign flips a per-symbol wrap at
        # +-pi/2 would cause, while a tag-induced pi flip -- a jump of
        # exactly pi -- stays in the same class and is never "fixed".
        polarity = PILOT_POLARITY[(s + 3) % PILOT_POLARITY.size]
        expected = PILOT_VALUES * polarity
        received = eq[PILOT_CARRIERS % N_FFT]
        corr = np.sum(received * np.conj(expected))
        cpe_raw = float(np.angle(corr))
        k = np.round((prev_cpe - cpe_raw) / np.pi)
        cpe_mod = cpe_raw + k * np.pi
        prev_cpe = cpe_mod
        cpes[s] = cpe_mod
        eq = eq * np.exp(-1j * cpe_mod)
        points = eq[HT_DATA_CARRIERS % N_FFT]
        hard = _demap_symbols(points, cfg.constellation)
        coded.append(ht_deinterleave(hard, cfg.n_bpsc))
        if soft:
            csi = np.abs(h[HT_DATA_CARRIERS % N_FFT]) ** 2
            llr = _demap_soft(points, cfg.constellation, csi)
            perm = _ht_permutation(cfg.n_cbps, cfg.n_bpsc)
            soft_blocks.append(llr[perm])

    if soft:
        llr_stream = (
            np.concatenate(soft_blocks) if soft_blocks else np.zeros(0)
        )
        llr_stream = convcode.depuncture_soft(llr_stream, cfg.coding_rate)
        scrambled = viterbi.decode_soft(llr_stream, n_info=ann["n_stream_bits"])
    else:
        coded_stream = np.concatenate(coded) if coded else np.zeros(0, np.uint8)
        coded_stream = convcode.depuncture(coded_stream, cfg.coding_rate)
        scrambled = viterbi.decode(coded_stream, n_info=ann["n_stream_bits"])
    # Pad the Viterbi output to the padded stream length before
    # descrambling so the additive sequence aligns.
    n_stream = ann["n_stream_bits"]
    n_padded = n_sym * cfg.n_dbps
    if scrambled.size < n_padded:
        scrambled = np.pad(scrambled, (0, n_padded - scrambled.size))
    data_bits = bitlib.scramble_80211_frame(scrambled, seed=cfg.scrambler_seed)[:n_padded]

    psdu = data_bits[16:n_stream - 6] if n_stream >= 22 else data_bits[16:]
    if n_psdu_bits is not None:
        psdu = psdu[:n_psdu_bits]
    symbol_bits = [
        data_bits[s * cfg.n_dbps : (s + 1) * cfg.n_dbps] for s in range(n_sym)
    ]
    return WifiNDecodeResult(
        data_bits=data_bits,
        psdu_bits=psdu,
        symbol_bits=symbol_bits,
        cpe_per_symbol=cpes,
    )


# ----------------------------------------------------------------------
# batched entry points
# ----------------------------------------------------------------------
@contracts.dtypes(np.uint8)
def modulate_batch(
    payloads: Sequence[bytes | np.ndarray],
    config: WifiNConfig | None = None,
) -> list[Waveform]:
    """Modulate many PSDUs at once; bit-identical to per-packet calls.

    Packets are grouped by PSDU bit length; each group shares one
    preamble build and one fused OFDM assembly (interleave scatter,
    constellation map, 64-point IFFT and CP insertion all carry a
    leading batch axis).  The per-packet scramble/encode/puncture calls
    are identical to the scalar path, so outputs match ``modulate``
    exactly.
    """
    cfg = config or WifiNConfig()

    def to_bits(payload: bytes | np.ndarray) -> np.ndarray:
        if isinstance(payload, (bytes, bytearray)):
            return bitlib.bits_from_bytes(payload)
        return np.asarray(payload, dtype=np.uint8)

    bit_arrays = [to_bits(p) for p in payloads]
    return run_grouped(
        bit_arrays,
        key_fn=lambda b: b.size,
        group_fn=lambda group: _modulate_group(group, cfg),
        where="wifi_n.modulate_batch",
    )


def _modulate_group(psdus: Sequence[np.ndarray], cfg: WifiNConfig) -> list[Waveform]:
    """Modulate a group of equal-length PSDUs with fused OFDM assembly."""
    xp = get_backend().xp
    n_batch = len(psdus)
    perf.dispatch("wifi_n.modulate", n_batch, batched=True)

    psdu_size = psdus[0].size
    n_unpadded = 16 + psdu_size + 6
    n_sym = max(1, int(np.ceil(n_unpadded / cfg.n_dbps)))
    pad = n_sym * cfg.n_dbps - n_unpadded
    # The scalar path pads ``stream`` in place before annotating, so the
    # recorded stream length is the padded one.
    n_stream = n_sym * cfg.n_dbps

    coded_rows = []
    for psdu in psdus:
        stream = np.concatenate(
            [np.zeros(16, np.uint8), psdu, np.zeros(6 + pad, np.uint8)]
        )
        scrambled = bitlib.scramble_80211_frame(stream, seed=cfg.scrambler_seed)
        coded_rows.append(convcode.puncture(convcode.encode(scrambled), cfg.coding_rate))
    coded = xp.stack([get_backend().asarray(c) for c in coded_rows])

    blocks = coded.reshape(n_batch, n_sym, cfg.n_cbps)
    perm = _ht_permutation(cfg.n_cbps, cfg.n_bpsc)
    inter = xp.empty_like(blocks)
    inter[:, :, perm] = blocks
    # _map_bits is elementwise over fixed-size bit groups, so mapping the
    # flattened batch produces the same value per point as per-symbol calls.
    points = _map_bits(np.asarray(inter).reshape(-1), cfg.constellation).reshape(
        n_batch, n_sym, 52
    )

    spec = xp.zeros((n_batch, n_sym, N_FFT), dtype=complex)
    spec[:, :, HT_DATA_CARRIERS % N_FFT] = points
    polarity = PILOT_POLARITY[(np.arange(n_sym) + 3) % PILOT_POLARITY.size]
    spec[:, :, PILOT_CARRIERS % N_FFT] = (
        PILOT_VALUES[None, None, :] * polarity[None, :, None]
    )
    body = xp.fft.ifft(spec, axis=-1) * N_FFT / np.sqrt(52.0)
    data = xp.concatenate([body[:, :, -CP_LEN:], body], axis=2).reshape(n_batch, -1)

    preamble = np.concatenate(
        [
            _l_stf(),
            _l_ltf(),
            _l_sig(0b1011, max(1, psdu_size // 8)),
            _ht_sig(cfg.mcs, max(1, psdu_size // 8)),
            _ht_stf(),
            _ht_ltf(),
        ]
    )
    payload_start = preamble.size
    data_np = get_backend().to_numpy(data)
    waves = []
    for b in range(n_batch):
        waves.append(
            Waveform(
                iq=np.concatenate([preamble, data_np[b]]),
                sample_rate=cfg.sample_rate,
                annotations={
                    "protocol": Protocol.WIFI_N,
                    "mcs": cfg.mcs,
                    "payload_start": payload_start,
                    "samples_per_symbol": SYMBOL_LEN,
                    "n_payload_symbols": n_sym,
                    "n_stream_bits": n_stream,
                    "scrambler_seed": cfg.scrambler_seed,
                    "ht_ltf_start": payload_start - SYMBOL_LEN,
                },
            )
        )
    return waves


def demodulate_batch(
    waves: Sequence[Waveform],
    *,
    n_psdu_bits: int | None = None,
    correct_cfo: bool = True,
    soft: bool = False,
) -> list[WifiNDecodeResult]:
    """Demodulate many 802.11n waveforms; decision-identical to loops.

    Waveforms are grouped by the annotation fields that steer control
    flow (frame geometry, MCS, scrambler seed); each group runs one
    vectorized receive chain -- batched CFO estimation and masked
    derotation, channel estimation and per-symbol equalization with a
    leading batch axis, and a single blocked Viterbi call -- producing
    the same bits as per-waveform :func:`demodulate` calls.
    """

    def key_fn(wave: Waveform) -> tuple[object, ...]:
        ann = wave.annotations
        if ann.get("protocol") is not Protocol.WIFI_N:
            raise ValueError("waveform is not annotated as 802.11n")
        return (
            wave.iq.size,
            wave.sample_rate,
            ann["mcs"],
            ann.get("scrambler_seed", 0x5D),
            ann["payload_start"],
            ann["n_payload_symbols"],
            ann["n_stream_bits"],
            ann["ht_ltf_start"],
        )

    return run_grouped(
        list(waves),
        key_fn=key_fn,
        group_fn=lambda group: _demodulate_group(
            group, n_psdu_bits=n_psdu_bits, correct_cfo=correct_cfo, soft=soft
        ),
        where="wifi_n.demodulate_batch",
    )


@contracts.shapes("b,n -> b")
def _estimate_cfo_batch(iq: np.ndarray, fs: Hertz, xp: ModuleType) -> np.ndarray:
    """Row-wise CFO estimates matching :func:`estimate_cfo` exactly."""
    n_batch = iq.shape[0]
    if iq.shape[1] < 320:
        return xp.zeros(n_batch)
    stf = iq[:, 16:144]
    c16 = xp.sum(stf * xp.conj(iq[:, 0:128]), axis=1)
    coarse = xp.angle(c16) / (2.0 * np.pi * 16.0 / fs)
    b1 = iq[:, 192:256]
    b2 = iq[:, 256:320]
    c64 = xp.sum(b2 * xp.conj(b1), axis=1)
    fine = xp.angle(c64) / (2.0 * np.pi * 64.0 / fs)
    alias = fs / 64.0
    k = xp.round((coarse - fine) / alias)
    return fine + k * alias


@contracts.shapes("b,n -> b,64")
def _estimate_channel_batch(
    iq: np.ndarray, ht_ltf_start: int, xp: ModuleType
) -> np.ndarray:
    """Row-wise HT-LTF channel estimates matching ``_estimate_channel``."""
    start = ht_ltf_start + CP_LEN
    body = iq[:, start : start + N_FFT]
    spec = xp.fft.fft(body, axis=-1) * np.sqrt(52.0) / N_FFT
    h = xp.zeros((iq.shape[0], N_FFT), dtype=complex)
    ks = np.arange(-28, 29)
    nz = _HTLTF28 != 0
    idx = ks[nz] % N_FFT
    h[:, idx] = spec[:, idx] / _HTLTF28[nz]
    return h


def _demodulate_group(
    waves: Sequence[Waveform],
    *,
    n_psdu_bits: int | None,
    correct_cfo: bool,
    soft: bool,
) -> list[WifiNDecodeResult]:
    """Vectorized receive chain for one dispatch-key group."""
    backend = get_backend()
    xp = backend.xp
    n_batch = len(waves)
    perf.dispatch("wifi_n.demodulate", n_batch, batched=True)

    ann = waves[0].annotations
    cfg = WifiNConfig(mcs=ann["mcs"], scrambler_seed=ann.get("scrambler_seed", 0x5D))
    fs = waves[0].sample_rate
    iq = xp.stack([backend.asarray(w.iq) for w in waves])

    if correct_cfo:
        cfo = _estimate_cfo_batch(iq, fs, xp)
        # Scalar path derotates only when |cfo| > 1 Hz; masking the
        # shift to 0.0 keeps untouched rows bit-identical (exp(0) == 1).
        shift = xp.where(xp.abs(cfo) > 1.0, -cfo, 0.0)
        if bool(xp.any(xp.abs(shift) > 0.0)):
            # Row-by-row mix: numpy's complex multiply rounds a fused
            # (B, n) operand differently than the 1-D rows the scalar
            # path multiplies, which drifts the pilot CPE by an ulp.
            t = xp.arange(iq.shape[1]) / fs
            iq = xp.stack(
                [
                    iq[b] * xp.exp(2j * np.pi * shift[b] * t)
                    for b in range(n_batch)
                ]
            )

    h = _estimate_channel_batch(iq, ann["ht_ltf_start"], xp)
    h = xp.where(xp.abs(h) < 1e-12, 1e-12, h)

    start = ann["payload_start"]
    n_sym = ann["n_payload_symbols"]
    coded_blocks = []
    soft_blocks = []
    cpes = xp.zeros((n_batch, n_sym))
    prev_cpe = xp.zeros(n_batch)
    perm = _ht_permutation(cfg.n_cbps, cfg.n_bpsc)
    ht_idx = HT_DATA_CARRIERS % N_FFT
    for s in range(n_sym):
        seg = iq[:, start + s * SYMBOL_LEN : start + (s + 1) * SYMBOL_LEN]
        if seg.shape[1] < SYMBOL_LEN:
            seg = xp.pad(seg, ((0, 0), (0, SYMBOL_LEN - seg.shape[1])))
        spec = xp.fft.fft(seg[:, CP_LEN:], axis=-1) * np.sqrt(52.0) / N_FFT
        eq = spec / h
        polarity = PILOT_POLARITY[(s + 3) % PILOT_POLARITY.size]
        expected = PILOT_VALUES * polarity
        # ascontiguousarray: the fancy-indexed pilot columns come back
        # non-C-contiguous, and a strided axis-1 reduction sums in a
        # different order than the scalar path's contiguous 1-D sum.
        received = xp.ascontiguousarray(eq[:, PILOT_CARRIERS % N_FFT])
        corr = xp.sum(received * xp.conj(expected)[None, :], axis=1)
        cpe_raw = xp.angle(corr)
        k = xp.round((prev_cpe - cpe_raw) / np.pi)
        cpe_mod = cpe_raw + k * np.pi
        prev_cpe = cpe_mod
        cpes[:, s] = cpe_mod
        eq = eq * xp.exp(-1j * cpe_mod)[:, None]
        points = eq[:, ht_idx]
        # _demap_symbols / _demap_soft are elementwise per constellation
        # point, so demapping the flattened batch matches per-row calls.
        hard = _demap_symbols(np.asarray(points).reshape(-1), cfg.constellation)
        coded_blocks.append(hard.reshape(n_batch, cfg.n_cbps)[:, perm])
        if soft:
            csi = np.abs(np.asarray(h[:, ht_idx])) ** 2
            llr = _demap_soft(
                np.asarray(points).reshape(-1), cfg.constellation, csi.reshape(-1)
            )
            soft_blocks.append(llr.reshape(n_batch, cfg.n_cbps)[:, perm])

    n_stream = ann["n_stream_bits"]
    if soft:
        llr_stream = np.concatenate(soft_blocks, axis=1)
        llr_rows = [
            convcode.depuncture_soft(llr_stream[b], cfg.coding_rate)
            for b in range(n_batch)
        ]
        scrambled_rows = viterbi.decode_soft_batch(llr_rows, n_info=n_stream)
    else:
        coded_stream = np.concatenate(coded_blocks, axis=1)
        coded_rows = [
            convcode.depuncture(coded_stream[b], cfg.coding_rate)
            for b in range(n_batch)
        ]
        scrambled_rows = viterbi.decode_batch(coded_rows, n_info=n_stream)

    n_padded = n_sym * cfg.n_dbps
    cpes_np = backend.to_numpy(cpes)
    results = []
    for b in range(n_batch):
        scrambled = scrambled_rows[b]
        if scrambled.size < n_padded:
            scrambled = np.pad(scrambled, (0, n_padded - scrambled.size))
        data_bits = bitlib.scramble_80211_frame(scrambled, seed=cfg.scrambler_seed)[
            :n_padded
        ]
        psdu = data_bits[16 : n_stream - 6] if n_stream >= 22 else data_bits[16:]
        if n_psdu_bits is not None:
            psdu = psdu[:n_psdu_bits]
        symbol_bits = [
            data_bits[s * cfg.n_dbps : (s + 1) * cfg.n_dbps] for s in range(n_sym)
        ]
        results.append(
            WifiNDecodeResult(
                data_bits=data_bits,
                psdu_bits=psdu,
                symbol_bits=symbol_bits,
                cpe_per_symbol=cpes_np[b].copy(),
            )
        )
    return results
