"""Bluetooth Low Energy LE 1M physical layer (GFSK, complex baseband).

Implements the advertising-channel frame the paper's BLE excitation
uses: preamble 0xAA, advertising access address 0x8E89BED6, whitened
PDU + CRC-24, GFSK with modulation index 0.5 and BT = 0.5 (Core Spec
v5.x Vol 6 Part B).

The receiver is a discriminator (instantaneous-frequency) demodulator,
matching how commodity BLE chips make bit decisions.  That matters for
overlay modulation: the tag's FSK shift mirrors a symbol's frequency
deviation (§2.4 "Bluetooth"), and the discriminator then naturally
reads the flipped bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import perf
from repro.core import contracts
from repro.core.backend import get_backend
from repro.phy import bits as bitlib
from repro.phy import pulse
from repro.phy.batch import run_grouped
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.types import Hertz

__all__ = [
    "ADVERTISING_ACCESS_ADDRESS",
    "BleConfig",
    "modulate",
    "demodulate",
    "modulate_batch",
    "demodulate_batch",
    "BleDecodeResult",
]

#: Advertising channel access address (fixed by the spec).
ADVERTISING_ACCESS_ADDRESS = 0x8E89BED6

#: Peak frequency deviation for LE 1M at modulation index 0.5.
FREQ_DEVIATION_HZ = 250e3

SYMBOL_RATE = 1e6

#: Supported PHYs: symbol rate and peak deviation (index 0.5 for both).
_PHY_PARAMS = {"1M": (1e6, 250e3), "2M": (2e6, 500e3)}


@dataclass(frozen=True)
class BleConfig:
    """Modulator configuration.

    ``samples_per_symbol`` sets oversampling of the 1 Msym/s stream;
    ``channel`` selects the whitening seed (37 is the primary
    advertising channel); ``access_address`` defaults to the
    advertising AA the identification templates rely on (§2.3.2: the
    fixed broadcast address is what lets the matching window extend to
    40 us).
    """

    samples_per_symbol: int = 8
    channel: int = 37
    access_address: int = ADVERTISING_ACCESS_ADDRESS
    bt: float = 0.5
    phy: str = "1M"

    @property
    def symbol_rate(self) -> Hertz:
        return _PHY_PARAMS[self.phy][0]

    @property
    def freq_deviation_hz(self) -> Hertz:
        return _PHY_PARAMS[self.phy][1]

    @property
    def sample_rate(self) -> Hertz:
        return self.symbol_rate * self.samples_per_symbol

    def __post_init__(self) -> None:
        if self.samples_per_symbol < 2:
            raise ValueError("samples_per_symbol must be >= 2")
        if not 0 <= self.channel <= 39:
            raise ValueError("channel must be 0..39")
        if self.phy not in _PHY_PARAMS:
            raise ValueError(f"unsupported BLE PHY {self.phy!r}")


def _frame_bits(payload: bytes, cfg: BleConfig) -> tuple[np.ndarray, int]:
    """Assemble on-air bits; returns (bits, index of first payload bit).

    PDU = 2-byte header (type/flags + length) + payload; header+payload
    +CRC are whitened.  The preamble alternates starting so its last
    bit differs from the AA's first bit, per spec (AA LSB=0 -> 0xAA).
    """
    aa_bits = bitlib.bits_from_int(cfg.access_address, 32)
    n_pre = 16 if cfg.phy == "2M" else 8  # LE 2M: 2-octet preamble
    preamble = np.tile([0, 1], n_pre // 2).astype(np.uint8)
    if aa_bits[0] == 1:
        preamble = 1 - preamble
    header = bytes([0x02, len(payload) & 0xFF])  # ADV_NONCONN_IND
    pdu_bits = bitlib.bits_from_bytes(header + payload)
    crc_bits = bitlib.crc24_ble(pdu_bits)
    whitened = bitlib.whiten_ble(np.concatenate([pdu_bits, crc_bits]), cfg.channel)
    bits = np.concatenate([preamble, aa_bits, whitened])
    payload_bit_index = preamble.size + aa_bits.size + 16  # skip header
    return bits, payload_bit_index


@contracts.dtypes(np.uint8)
def modulate(payload: bytes | np.ndarray, config: BleConfig | None = None) -> Waveform:
    """Modulate an advertising PDU payload into a GFSK waveform.

    ``payload`` may also be a raw on-air bit array (no framing or
    whitening applied) for carrier-crafting use.
    """
    perf.dispatch("ble.modulate", 1, batched=False)
    cfg = config or BleConfig()
    bits, payload_bit, n_payload_bits, whitened = _onair_bits(payload, cfg)

    sps = cfg.samples_per_symbol
    nrz = 2.0 * bits.astype(float) - 1.0
    taps = pulse.gaussian_taps(cfg.bt, sps)
    shaped = np.convolve(np.repeat(nrz, sps), taps)
    delay = (len(taps) - 1) // 2
    shaped = shaped[delay : delay + bits.size * sps]

    # Frequency modulation: integrate the shaped NRZ stream.
    phase = 2.0 * np.pi * cfg.freq_deviation_hz * np.cumsum(shaped) / cfg.sample_rate
    iq = np.exp(1j * phase)
    return Waveform(
        iq=iq,
        sample_rate=cfg.sample_rate,
        annotations=_annotations(cfg, bits.size, payload_bit, n_payload_bits, whitened),
    )


def _onair_bits(
    payload: bytes | np.ndarray, cfg: BleConfig
) -> tuple[np.ndarray, int, int, bool]:
    """On-air bit assembly shared by the scalar and batched modulators.

    Returns ``(bits, first_payload_bit, n_payload_bits, whitened)``.
    """
    if isinstance(payload, (bytes, bytearray)):
        bits, payload_bit = _frame_bits(bytes(payload), cfg)
        return bits, payload_bit, len(payload) * 8, True
    raw = np.asarray(payload, dtype=np.uint8)
    aa_bits = bitlib.bits_from_int(cfg.access_address, 32)
    n_pre = 16 if cfg.phy == "2M" else 8
    preamble = np.tile([0, 1], n_pre // 2).astype(np.uint8)
    if aa_bits[0] == 1:
        preamble = 1 - preamble
    bits = np.concatenate([preamble, aa_bits, raw])
    return bits, preamble.size + aa_bits.size, raw.size, False


def _annotations(
    cfg: BleConfig,
    n_bits: int,
    payload_bit: int,
    n_payload_bits: int,
    whitened: bool,
) -> dict:
    sps = cfg.samples_per_symbol
    return {
        "protocol": Protocol.BLE,
        "payload_start": payload_bit * sps,
        "samples_per_symbol": sps,
        "n_payload_symbols": n_bits - payload_bit,
        "n_payload_bits": n_payload_bits,
        "channel": cfg.channel,
        "n_frame_bits": n_bits,
        "n_preamble_bits": 16 if cfg.phy == "2M" else 8,
        "whitened": whitened,
    }


@dataclass
class BleDecodeResult:
    """Receiver output.

    ``payload_bits`` is the dewhitened PDU payload (header stripped
    when the frame was byte-framed); ``onair_bits`` is the raw bit
    stream after the access address -- the overlay decoder's comparison
    domain (whitening is an additive involution, so tag flips map 1:1
    between the two).
    """

    payload_bits: np.ndarray
    onair_bits: np.ndarray
    crc_ok: bool
    access_address: int


def demodulate(wave: Waveform, *, dewhiten: bool = True) -> BleDecodeResult:
    """Discriminator demodulation of a BLE waveform."""
    perf.dispatch("ble.demodulate", 1, batched=False)
    ann = wave.annotations
    if ann.get("protocol") is not Protocol.BLE:
        raise ValueError("waveform is not annotated as BLE")
    sps = ann["samples_per_symbol"]
    n_bits = ann["n_frame_bits"]

    # Pre-detection channel filter: a discriminator is hypersensitive
    # to wideband noise ("click" noise), so real receivers band-limit
    # to ~the symbol rate first.
    iq = wave.iq
    if sps >= 4:
        from scipy import signal as sp_signal

        cutoff = 0.7 / sps  # ~0.7 x symbol rate, normalized to Nyquist
        sos = sp_signal.butter(4, 2.0 * cutoff, output="sos")
        # Zero-phase filtering keeps the symbol grid aligned (a real
        # receiver compensates the filter's group delay in its timing
        # recovery).
        if iq.size > 24:
            iq = sp_signal.sosfiltfilt(sos, iq)

    # Instantaneous frequency from phase differences.
    dphi = np.angle(iq[1:] * np.conj(iq[:-1]))
    dphi = np.concatenate([[0.0], dphi])

    # CFO appears as a DC offset of the discriminator; the alternating
    # preamble has zero mean deviation, so its mean dphi estimates the
    # offset (standard GFSK preamble AFC).
    n_pre_bits = ann.get("n_preamble_bits", 8)
    pre = dphi[: n_pre_bits * sps]
    dc = float(pre.mean()) if pre.size else 0.0
    dphi = dphi - dc

    # Integrate-and-dump over the central half of each symbol (all
    # symbols at once; zero-padding keeps a truncated final symbol
    # equal to summing its short segment).
    need = n_bits * sps
    if dphi.size < need:
        dphi = np.pad(dphi, (0, need - dphi.size))
    core = dphi[:need].reshape(n_bits, sps)[:, sps // 4 : sps - sps // 4]
    decisions = (core.sum(axis=1) > 0).astype(np.uint8)

    aa_start = ann.get("n_preamble_bits", 8)
    aa = bitlib.int_from_bits(decisions[aa_start : aa_start + 32])
    pdu_onair = decisions[aa_start + 32 :]

    framed = ann.get("whitened", True)
    if framed and dewhiten and "channel" in ann:
        pdu = bitlib.whiten_ble(pdu_onair, ann["channel"])
    else:
        pdu = pdu_onair.copy()

    n_payload_bits = ann.get("n_payload_bits", max(pdu.size - 16 - 24, 0))
    crc_ok = False
    if framed and pdu.size >= 16 + 24:
        body = pdu[: 16 + n_payload_bits]
        crc_rx = pdu[16 + n_payload_bits : 16 + n_payload_bits + 24]
        crc_ok = bool(
            crc_rx.size == 24 and np.array_equal(bitlib.crc24_ble(body), crc_rx)
        )
        payload_bits = pdu[16 : 16 + n_payload_bits]
    else:
        payload_bits = pdu[:n_payload_bits]
    return BleDecodeResult(
        payload_bits=payload_bits,
        onair_bits=pdu_onair,
        crc_ok=crc_ok,
        access_address=aa,
    )


# ----------------------------------------------------------------------
# batched entry points
# ----------------------------------------------------------------------
@contracts.dtypes(np.uint8)
def modulate_batch(
    payloads: Sequence[bytes | np.ndarray],
    config: BleConfig | None = None,
) -> list[Waveform]:
    """Modulate N PDUs with one vectorized dispatch per frame length.

    Bit-identical to ``[modulate(p, config) for p in payloads]``: the
    per-frame pulse-shaping convolution keeps the scalar call, while
    the phase integration and complex exponential (the bulk of the
    samples-domain work) run once over the stacked batch.
    """
    cfg = config or BleConfig()
    framed = [_onair_bits(p, cfg) for p in payloads]
    return run_grouped(
        framed,
        lambda f: (f[0].size, f[1], f[2], f[3]),
        lambda group: _modulate_group(group, cfg),
        where="ble.modulate_batch",
    )


def _modulate_group(
    group: list[tuple[np.ndarray, int, int, bool]], cfg: BleConfig
) -> list[Waveform]:
    n_batch = len(group)
    perf.dispatch("ble.modulate", n_batch, batched=True)
    xp = get_backend().xp
    bits = np.stack([f[0] for f in group])  # (B, n_bits)
    _, payload_bit, n_payload_bits, whitened = group[0]
    sps = cfg.samples_per_symbol
    nrz = 2.0 * bits.astype(float) - 1.0
    taps = pulse.gaussian_taps(cfg.bt, sps)
    delay = (len(taps) - 1) // 2
    n_out = bits.shape[1] * sps
    shaped = np.empty((n_batch, n_out))
    for b in range(n_batch):
        # np.convolve per frame: identical call (and result) to the
        # scalar path; the taps are short so this is not the hot part.
        full = np.convolve(np.repeat(nrz[b], sps), taps)
        shaped[b] = full[delay : delay + n_out]
    phase = (
        2.0
        * np.pi
        * cfg.freq_deviation_hz
        * xp.cumsum(shaped, axis=1)
        / cfg.sample_rate
    )
    iq = xp.exp(1j * phase)
    ann = _annotations(cfg, bits.shape[1], payload_bit, n_payload_bits, whitened)
    return [
        Waveform(iq=iq[b].copy(), sample_rate=cfg.sample_rate, annotations=dict(ann))
        for b in range(n_batch)
    ]


def demodulate_batch(
    waves: Sequence[Waveform], *, dewhiten: bool = True
) -> list[BleDecodeResult]:
    """Batched :func:`demodulate`: bit-identical to the scalar loop.

    The pre-detection filter, discriminator, AFC and integrate-and-dump
    all reduce along the sample axis only, so stacking frames adds no
    cross-talk and no float divergence (``sosfiltfilt`` over ``axis=-1``
    filters rows independently).
    """

    def key(wave: Waveform) -> tuple:
        ann = wave.annotations
        if ann.get("protocol") is not Protocol.BLE:
            raise ValueError("waveform is not annotated as BLE")
        return (
            wave.iq.size,
            int(ann["samples_per_symbol"]),
            int(ann["n_frame_bits"]),
            int(ann.get("n_preamble_bits", 8)),
            ("channel" in ann, ann.get("channel")),
            ("n_payload_bits" in ann, ann.get("n_payload_bits")),
            bool(ann.get("whitened", True)),
        )

    return run_grouped(
        list(waves),
        key,
        lambda group: _demodulate_group(group, dewhiten=dewhiten),
        where="ble.demodulate_batch",
    )


def _demodulate_group(
    waves: list[Waveform], *, dewhiten: bool
) -> list[BleDecodeResult]:
    xp = get_backend().xp
    n_batch = len(waves)
    perf.dispatch("ble.demodulate", n_batch, batched=True)
    ann = waves[0].annotations
    sps = int(ann["samples_per_symbol"])
    n_bits = int(ann["n_frame_bits"])
    iq = xp.stack([w.iq for w in waves])  # (B, n_samples)

    if sps >= 4:
        from scipy import signal as sp_signal

        cutoff = 0.7 / sps
        sos = sp_signal.butter(4, 2.0 * cutoff, output="sos")
        if iq.shape[1] > 24:
            iq = sp_signal.sosfiltfilt(sos, iq, axis=-1)

    dphi = xp.angle(iq[:, 1:] * xp.conj(iq[:, :-1]))
    dphi = xp.concatenate([xp.zeros((n_batch, 1)), dphi], axis=1)

    n_pre_bits = int(ann.get("n_preamble_bits", 8))
    pre = dphi[:, : n_pre_bits * sps]
    dc = pre.mean(axis=1) if pre.shape[1] else xp.zeros(n_batch)
    dphi = dphi - dc[:, None]

    need = n_bits * sps
    if dphi.shape[1] < need:
        dphi = xp.pad(dphi, ((0, 0), (0, need - dphi.shape[1])))
    core = dphi[:, :need].reshape(n_batch, n_bits, sps)[
        :, :, sps // 4 : sps - sps // 4
    ]
    decisions = (core.sum(axis=2) > 0).astype(np.uint8)

    aa_start = int(ann.get("n_preamble_bits", 8))
    framed = bool(ann.get("whitened", True))

    results = []
    for b in range(n_batch):
        row = decisions[b]
        aa = bitlib.int_from_bits(row[aa_start : aa_start + 32])
        pdu_onair = row[aa_start + 32 :].copy()
        if framed and dewhiten and "channel" in ann:
            pdu = bitlib.whiten_ble(pdu_onair, ann["channel"])
        else:
            pdu = pdu_onair.copy()
        n_payload_bits = ann.get("n_payload_bits", max(pdu.size - 16 - 24, 0))
        crc_ok = False
        if framed and pdu.size >= 16 + 24:
            body = pdu[: 16 + n_payload_bits]
            crc_rx = pdu[16 + n_payload_bits : 16 + n_payload_bits + 24]
            crc_ok = bool(
                crc_rx.size == 24
                and np.array_equal(bitlib.crc24_ble(body), crc_rx)
            )
            payload_bits = pdu[16 : 16 + n_payload_bits]
        else:
            payload_bits = pdu[:n_payload_bits]
        results.append(
            BleDecodeResult(
                payload_bits=payload_bits,
                onair_bits=pdu_onair,
                crc_ok=crc_ok,
                access_address=aa,
            )
        )
    return results
