"""Bit-level utilities shared by all PHY implementations.

Everything here operates on NumPy ``uint8`` arrays of 0/1 values.  The
2.4 GHz standards transmit bytes least-significant-bit first, so the
packing helpers default to LSB-first.

Contents:

* bit/byte packing (:func:`bits_from_bytes`, :func:`bytes_from_bits`)
* generic Galois LFSR (:class:`Lfsr`)
* the CRCs the four protocols use (802.11 FCS CRC-32, 802.15.4 CRC-16,
  BLE CRC-24, 802.11b PLCP header CRC-16)
* the 802.11b self-synchronizing scrambler and the 802.11a/n
  frame-synchronous scrambler
* BLE data whitening
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.types import BitArray

__all__ = [
    "bits_from_bytes",
    "bytes_from_bits",
    "bits_from_int",
    "int_from_bits",
    "Lfsr",
    "crc32_80211",
    "crc16_ccitt",
    "crc16_80211b_plcp",
    "crc24_ble",
    "scramble_80211b",
    "descramble_80211b",
    "scramble_80211_frame",
    "ble_whitening_sequence",
    "whiten_ble",
]


def _as_bits(bits: np.ndarray | list[int]) -> BitArray:
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D bit array, got shape {arr.shape}")
    if arr.size and arr.max() > 1:
        raise ValueError("bit array contains values other than 0/1")
    return arr


def bits_from_bytes(data: bytes | bytearray | np.ndarray, *, lsb_first: bool = True) -> BitArray:
    """Expand bytes into a bit array (LSB-first by default, as on air)."""
    byte_arr = np.frombuffer(bytes(data), dtype=np.uint8)
    bit_order = "little" if lsb_first else "big"
    return np.unpackbits(byte_arr, bitorder=bit_order)


def bytes_from_bits(bits: np.ndarray | list[int], *, lsb_first: bool = True) -> bytes:
    """Pack a bit array back into bytes; length must be a multiple of 8."""
    arr = _as_bits(bits)
    if arr.size % 8:
        raise ValueError(f"bit count {arr.size} is not a multiple of 8")
    bit_order = "little" if lsb_first else "big"
    return np.packbits(arr, bitorder=bit_order).tobytes()


def bits_from_int(value: int, width: int, *, lsb_first: bool = True) -> BitArray:
    """Expand an integer into ``width`` bits."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)
    return bits if lsb_first else bits[::-1]


def int_from_bits(bits: np.ndarray | list[int], *, lsb_first: bool = True) -> int:
    """Pack a bit array into an integer."""
    arr = _as_bits(bits)
    if not lsb_first:
        arr = arr[::-1]
    return int(sum(int(b) << i for i, b in enumerate(arr)))


class Lfsr:
    """Fibonacci LFSR over GF(2) with arbitrary taps.

    ``taps`` are exponents of the feedback polynomial excluding the
    constant term; e.g. the 802.11b scrambler polynomial
    ``x^7 + x^4 + 1`` is ``Lfsr(taps=(7, 4), state=seed, width=7)``.
    The output bit each step is the XOR of the tapped state bits
    (state bit *i* holds the value delayed by *i+1* steps).
    """

    def __init__(self, taps: tuple[int, ...], state: int, width: int) -> None:
        if not taps or max(taps) > width:
            raise ValueError("taps must be non-empty and fit within width")
        if state <= 0 or state >= (1 << width):
            raise ValueError("state must be a non-zero value within width bits")
        self.taps = taps
        self.width = width
        self.state = state

    def next_bit(self) -> int:
        """Advance one step and return the generated bit."""
        out = 0
        for t in self.taps:
            out ^= (self.state >> (t - 1)) & 1
        self.state = ((self.state << 1) | out) & ((1 << self.width) - 1)
        return out

    def sequence(self, n: int) -> BitArray:
        """Generate ``n`` output bits."""
        return np.array([self.next_bit() for _ in range(n)], dtype=np.uint8)


@lru_cache(maxsize=64)
def _lfsr_cycle(taps: tuple[int, ...], seed: int, width: int) -> BitArray:
    """One full period of an :class:`Lfsr` output stream.

    LFSR sequences are purely state-driven, so the stream is the cycle
    the state walks (at most ``2^width - 1`` long) repeated forever.
    Generating the cycle once and tiling it replaces the per-bit Python
    loop for the frame-synchronous scrambler and BLE whitening.
    """
    if max(taps) != width:
        raise ValueError("cycle generation requires an invertible LFSR (max tap == width)")
    lfsr = Lfsr(taps=taps, state=seed, width=width)
    out: list[int] = []
    start = lfsr.state
    while True:
        out.append(lfsr.next_bit())
        if lfsr.state == start:
            break
    return np.array(out, dtype=np.uint8)


def _reflected_crc_table(poly: int) -> list[int]:
    """256-entry byte-update table for a reflected (LSB-first) CRC."""
    reg = np.arange(256, dtype=np.uint64)
    for _ in range(8):
        reg = np.where(reg & 1, (reg >> np.uint64(1)) ^ np.uint64(poly), reg >> np.uint64(1))
    return [int(x) for x in reg]


_CRC32_TABLE = _reflected_crc_table(0xEDB88320)
_CRC16_TABLE = _reflected_crc_table(0x8408)


def _msb_crc_table(poly: int, width: int) -> list[int]:
    """256-entry byte-update table for a left-shifting (MSB-in) CRC."""
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    table = []
    for i in range(256):
        reg = i << (width - 8)
        for _ in range(8):
            reg = ((reg << 1) ^ poly) & mask if reg & top else (reg << 1) & mask
        table.append(reg)
    return table


_CRC24_TABLE = _msb_crc_table(0x00065B, 24)


def _reflected_crc(bits: np.ndarray, table: list[int], poly: int, reg: int) -> int:
    """Run a reflected CRC over an LSB-first bit stream.

    Whole bytes go through the table (one Python iteration per 8 bits);
    any trailing partial byte falls back to bit-at-a-time, so arbitrary
    bit counts still work.
    """
    n_bytes = bits.size // 8
    if n_bytes:
        for byte in np.packbits(bits[: n_bytes * 8], bitorder="little").tolist():
            reg = (reg >> 8) ^ table[(reg ^ byte) & 0xFF]
    for b in bits[n_bytes * 8 :]:
        fb = (reg ^ int(b)) & 1
        reg >>= 1
        if fb:
            reg ^= poly
    return reg


def _crc_generic(bits: np.ndarray, poly: int, width: int, init: int) -> int:
    """Bitwise CRC with MSB-first shifting over an LSB-first bit stream."""
    reg = init
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    for b in bits:
        fb = ((reg >> (width - 1)) & 1) ^ int(b)
        reg = (reg << 1) & mask
        if fb:
            reg ^= poly & mask
    return reg


def crc32_80211(data_bits: np.ndarray | list[int]) -> BitArray:
    """802.11 FCS CRC-32 over a bit array, returned as 32 bits (LSB first).

    Standard CRC-32 (poly 0x04C11DB7, init all-ones, final complement,
    reflected I/O).  Operates on bits so partially-filled frames can be
    checked too.
    """
    arr = _as_bits(data_bits)
    reg = _reflected_crc(arr, _CRC32_TABLE, 0xEDB88320, 0xFFFFFFFF)
    reg ^= 0xFFFFFFFF
    return bits_from_int(reg, 32)


def crc16_ccitt(data_bits: np.ndarray | list[int], *, init: int = 0x0000) -> BitArray:
    """CRC-16-CCITT (poly 0x1021) as used by IEEE 802.15.4, LSB-first bits."""
    arr = _as_bits(data_bits)
    # 802.15.4 processes LSB-first with a reflected implementation
    # (poly 0x8408, the reflection of 0x1021).
    reg = _reflected_crc(arr, _CRC16_TABLE, 0x8408, init)
    return bits_from_int(reg, 16)


def crc16_80211b_plcp(header_bits: np.ndarray | list[int]) -> BitArray:
    """802.11b PLCP header CRC-16 (CCITT, init all ones, complemented)."""
    arr = _as_bits(header_bits)
    reg = _crc_generic(arr, poly=0x1021, width=16, init=0xFFFF)
    reg ^= 0xFFFF
    # Transmitted MSB of the register first per 802.11-2016 figure 16-5.
    return bits_from_int(reg, 16, lsb_first=False)


def crc24_ble(data_bits: np.ndarray | list[int], *, init: int = 0x555555) -> BitArray:
    """BLE CRC-24 (poly x^24+x^10+x^9+x^6+x^4+x^3+x+1), LSB-first output.

    ``init`` is 0x555555 for advertising channel PDUs (Core Spec v5,
    Vol 6 Part B §3.1.1).
    """
    arr = _as_bits(data_bits)
    # BLE shifts LSB-first through the register; poly bits per spec.
    poly = 0x00065B  # x^10+x^9+x^6+x^4+x^3+x+1 (x^24 implied)
    reg = init
    # Each stream bit XORs into the register top, so 8 bits at a time
    # collapse into one table step (first bit in the byte's MSB).
    n_bytes = arr.size // 8
    if n_bytes:
        for byte in np.packbits(arr[: n_bytes * 8], bitorder="big").tolist():
            reg = ((reg << 8) & 0xFFFFFF) ^ _CRC24_TABLE[((reg >> 16) & 0xFF) ^ byte]
    for b in arr[n_bytes * 8 :]:
        fb = ((reg >> 23) & 1) ^ int(b)
        reg = (reg << 1) & 0xFFFFFF
        if fb:
            reg ^= poly
    # CRC transmitted MSB of register last -> LSB-first over 24 bits of
    # the *reversed* register per spec transmission order.
    return bits_from_int(reg, 24, lsb_first=False)


def _build_80211b_scramble_luts() -> tuple[list[int], list[int]]:
    """(output byte, next state) per (state, input byte), flattened.

    The self-synchronizing scrambler's state after 8 bits depends only
    on the starting state and the 8 input bits, so one table lookup
    advances a whole byte.  Built vectorized over all 128 x 256
    combinations; flattened to plain lists because scalar indexing of
    Python lists inside the per-byte loop beats NumPy scalar indexing.
    """
    state = np.repeat(np.arange(128, dtype=np.int64), 256).reshape(128, 256)
    byte = np.tile(np.arange(256, dtype=np.int64), 128).reshape(128, 256)
    out = np.zeros((128, 256), dtype=np.int64)
    for k in range(8):
        bit = (byte >> k) & 1
        fb = ((state >> 3) & 1) ^ ((state >> 6) & 1)
        s = bit ^ fb
        out |= s << k
        state = ((state << 1) | s) & 0x7F
    return out.reshape(-1).tolist(), state.reshape(-1).tolist()


_SCR11B_OUT, _SCR11B_STATE = _build_80211b_scramble_luts()


def scramble_80211b(bits: np.ndarray | list[int], *, seed: int = 0x6C) -> BitArray:
    """802.11b self-synchronizing scrambler (x^7 + x^4 + 1).

    ``seed`` 0x6C is the initial register for long-preamble frames
    (0x1B for short).  The scrambler output feeds back into the shift
    register, so the descrambler is self-synchronizing.

    The output recurrence ``s[i] = b[i] ^ s[i-4] ^ s[i-7]`` is serial
    in its own output, so this runs byte-at-a-time through precomputed
    (state, byte) tables rather than bit-at-a-time.
    """
    arr = _as_bits(bits)
    state = seed & 0x7F
    n_bytes = arr.size // 8
    out = np.empty_like(arr)
    if n_bytes:
        out_bytes = [0] * n_bytes
        for i, byte in enumerate(np.packbits(arr[: n_bytes * 8], bitorder="little").tolist()):
            key = (state << 8) | byte
            out_bytes[i] = _SCR11B_OUT[key]
            state = _SCR11B_STATE[key]
        out[: n_bytes * 8] = np.unpackbits(np.array(out_bytes, dtype=np.uint8), bitorder="little")
    for i in range(n_bytes * 8, arr.size):
        fb = ((state >> 3) & 1) ^ ((state >> 6) & 1)
        s = int(arr[i]) ^ fb
        out[i] = s
        state = ((state << 1) | s) & 0x7F
    return out


def descramble_80211b(bits: np.ndarray | list[int], *, seed: int = 0x6C) -> BitArray:
    """Inverse of :func:`scramble_80211b` (self-synchronizing form).

    The descrambler's shift register holds the last seven *received*
    bits, all of which are known up front: output ``i`` is simply
    ``rx[i] ^ rx[i-4] ^ rx[i-7]`` with the seed supplying the history
    before the stream starts.  That makes this side fully vectorized.
    """
    arr = _as_bits(bits)
    n = arr.size
    history = np.array([(seed >> (6 - j)) & 1 for j in range(7)], dtype=np.uint8)
    ext = np.concatenate([history, arr])
    return arr ^ ext[3 : 3 + n] ^ ext[:n]


def scramble_80211_frame(bits: np.ndarray | list[int], *, seed: int = 0x5D) -> BitArray:
    """802.11a/g/n frame-synchronous scrambler (x^7 + x^4 + 1).

    Unlike the 802.11b scrambler the register is free-running from
    ``seed``; applying the function twice with the same seed is the
    identity, so it serves as its own descrambler.
    """
    arr = _as_bits(bits)
    cycle = _lfsr_cycle((7, 4), seed & 0x7F, 7)
    return arr ^ np.resize(cycle, arr.size)


def ble_whitening_sequence(channel: int, n: int) -> BitArray:
    """BLE whitening sequence for ``channel`` (x^7 + x^4 + 1, seeded).

    Register initialized to ``1 | channel`` per Core Spec Vol 6 Part B
    §3.2: position 0 set to one, positions 1..6 the channel index MSB
    first.
    """
    if not 0 <= channel <= 39:
        raise ValueError(f"BLE channel must be 0..39, got {channel}")
    return np.resize(_ble_whiten_cycle(channel), n)


@lru_cache(maxsize=40)
def _ble_whiten_cycle(channel: int) -> BitArray:
    """One period of the BLE whitening LFSR for ``channel``.

    The Galois-form register (x^7 + x^4 + 1) is invertible, so the
    state walk from any seed is a pure cycle; generate it once per
    channel and tile.
    """
    # State bits: x6..x0; init x6=1, x5..x0 = channel bits b5..b0.
    state = (1 << 6) | (channel & 0x3F)
    start = state
    out: list[int] = []
    while True:
        b = state & 1  # x0 output
        out.append(b)
        state >>= 1
        if b:
            state ^= 0x44  # feed back into x6 and x2 (x^7 + x^4 + 1)
        if state == start:
            break
    return np.array(out, dtype=np.uint8)


def whiten_ble(bits: np.ndarray | list[int], channel: int) -> BitArray:
    """Apply (or remove -- it is an involution) BLE whitening."""
    arr = _as_bits(bits)
    return arr ^ ble_whitening_sequence(channel, arr.size)
