"""Legacy 802.11a/g OFDM physical layer (non-HT, 20 MHz).

The paper's overlay modulation covers "the OFDM modulation that covers
802.11a/g/n/ac/ax" (footnote 5).  This module supplies the legacy
(48-data-subcarrier) format: L-STF + L-LTF + L-SIG followed by legacy
data symbols at 6-54 Mbps.  It shares the training fields, BCC,
constellation maps, and puncturing with :mod:`repro.phy.wifi_n` and
differs in the interleaver (16-column legacy form), subcarrier count,
and the SIGNAL-field rate encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import contracts
from repro.phy import bits as bitlib
from repro.phy import convcode, viterbi
from repro.phy.interleaver import deinterleave as legacy_deinterleave
from repro.phy.interleaver import interleave as legacy_interleave
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.types import Hertz
from repro.phy.wifi_n import (
    CP_LEN,
    LEGACY_DATA_CARRIERS,
    N_FFT,
    PILOT_CARRIERS,
    PILOT_POLARITY,
    PILOT_VALUES,
    SYMBOL_LEN,
    _demap_symbols,
    _l_ltf,
    _l_sig,
    _l_stf,
    _map_bits,
    _ofdm_symbol,
)

__all__ = ["WifiAConfig", "modulate", "demodulate", "RATE_TABLE"]

SAMPLE_RATE = 20e6

#: rate (Mbps) -> (constellation, bits/subcarrier, coding rate, L-SIG
#: RATE bits) per 802.11-2016 Table 17-6.
RATE_TABLE = {
    6.0: ("BPSK", 1, "1/2", 0b1011),
    9.0: ("BPSK", 1, "3/4", 0b1111),
    12.0: ("QPSK", 2, "1/2", 0b1010),
    18.0: ("QPSK", 2, "3/4", 0b1110),
    24.0: ("16QAM", 4, "1/2", 0b1001),
    36.0: ("16QAM", 4, "3/4", 0b1101),
    48.0: ("64QAM", 6, "2/3", 0b1000),
    54.0: ("64QAM", 6, "3/4", 0b1100),
}

_RATE_FRACTION = {"1/2": (1, 2), "2/3": (2, 3), "3/4": (3, 4)}


@dataclass(frozen=True)
class WifiAConfig:
    """Modulator configuration: ``rate_mbps`` selects the legacy rate."""

    rate_mbps: float = 6.0
    scrambler_seed: int = 0x5D

    def __post_init__(self) -> None:
        if self.rate_mbps not in RATE_TABLE:
            raise ValueError(
                f"unsupported 802.11a/g rate {self.rate_mbps}; "
                f"supported: {sorted(RATE_TABLE)}"
            )

    @property
    def constellation(self) -> str:
        return RATE_TABLE[self.rate_mbps][0]

    @property
    def n_bpsc(self) -> int:
        return RATE_TABLE[self.rate_mbps][1]

    @property
    def coding_rate(self) -> str:
        return RATE_TABLE[self.rate_mbps][2]

    @property
    def n_cbps(self) -> int:
        return 48 * self.n_bpsc

    @property
    def n_dbps(self) -> int:
        num, den = _RATE_FRACTION[self.coding_rate]
        return self.n_cbps * num // den

    @property
    def sample_rate(self) -> Hertz:
        return SAMPLE_RATE


@contracts.dtypes(np.uint8)
def modulate(payload: bytes | np.ndarray, config: WifiAConfig | None = None) -> Waveform:
    """Modulate a PSDU into a legacy OFDM waveform."""
    cfg = config or WifiAConfig()
    if isinstance(payload, (bytes, bytearray)):
        psdu = bitlib.bits_from_bytes(payload)
    else:
        psdu = np.asarray(payload, dtype=np.uint8)
    stream = np.concatenate([np.zeros(16, np.uint8), psdu, np.zeros(6, np.uint8)])
    n_sym = max(1, int(np.ceil(stream.size / cfg.n_dbps)))
    pad = n_sym * cfg.n_dbps - stream.size
    stream = np.concatenate([stream, np.zeros(pad, np.uint8)])

    scrambled = bitlib.scramble_80211_frame(stream, seed=cfg.scrambler_seed)
    coded = convcode.puncture(convcode.encode(scrambled), cfg.coding_rate)

    data_samples = []
    for s in range(n_sym):
        block = coded[s * cfg.n_cbps : (s + 1) * cfg.n_cbps]
        inter = legacy_interleave(block, n_cbps=cfg.n_cbps, n_bpsc=cfg.n_bpsc)
        points = _map_bits(inter, cfg.constellation)
        polarity = PILOT_POLARITY[(s + 1) % PILOT_POLARITY.size]
        data_samples.append(_ofdm_symbol(points, LEGACY_DATA_CARRIERS, polarity))

    preamble = np.concatenate(
        [
            _l_stf(),
            _l_ltf(),
            _l_sig(RATE_TABLE[cfg.rate_mbps][3], max(1, psdu.size // 8)),
        ]
    )
    iq = np.concatenate([preamble] + data_samples)
    return Waveform(
        iq=iq,
        sample_rate=cfg.sample_rate,
        annotations={
            "protocol": Protocol.WIFI_N,  # same OFDM family for the tag
            "legacy_ofdm": True,
            "rate_mbps": cfg.rate_mbps,
            "payload_start": preamble.size,
            "samples_per_symbol": SYMBOL_LEN,
            "n_payload_symbols": n_sym,
            "n_stream_bits": stream.size,
            "scrambler_seed": cfg.scrambler_seed,
            "l_ltf_start": 160,
        },
    )


def demodulate(wave: Waveform, *, n_psdu_bits: int | None = None) -> np.ndarray:
    """Legacy OFDM receive chain; returns the PSDU bits.

    Channel estimation uses the L-LTF (the legacy training field), and
    the data path mirrors :func:`repro.phy.wifi_n.demodulate` with the
    48-subcarrier mapping and the 16-column interleaver.
    """
    ann = wave.annotations
    if not ann.get("legacy_ofdm"):
        raise ValueError("waveform is not annotated as legacy OFDM")
    cfg = WifiAConfig(
        rate_mbps=ann["rate_mbps"], scrambler_seed=ann.get("scrambler_seed", 0x5D)
    )

    # Channel estimate from the first L-LTF body.
    from repro.phy.wifi_n import _L26

    start_ltf = ann["l_ltf_start"] + 32
    body = wave.iq[start_ltf : start_ltf + N_FFT]
    spec = np.fft.fft(body) * np.sqrt(52.0) / N_FFT
    h = np.ones(N_FFT, dtype=complex)
    for k in range(-26, 27):
        ref = _L26[k + 26]
        if ref != 0:
            h[k % N_FFT] = spec[k % N_FFT] / ref
    h = np.where(np.abs(h) < 1e-12, 1e-12, h)

    start = ann["payload_start"]
    n_sym = ann["n_payload_symbols"]
    coded = []
    prev_cpe = 0.0
    for s in range(n_sym):
        seg = wave.iq[start + s * SYMBOL_LEN : start + (s + 1) * SYMBOL_LEN]
        if seg.size < SYMBOL_LEN:
            seg = np.pad(seg, (0, SYMBOL_LEN - seg.size))
        spec = np.fft.fft(seg[CP_LEN:]) * np.sqrt(52.0) / N_FFT
        eq = spec / h
        polarity = PILOT_POLARITY[(s + 1) % PILOT_POLARITY.size]
        expected = PILOT_VALUES * polarity
        received = np.array([eq[int(c) % N_FFT] for c in PILOT_CARRIERS])
        cpe_raw = float(np.angle(np.sum(received * np.conj(expected))))
        # Continuous modulo-pi tracking (see wifi_n.demodulate).
        k = np.round((prev_cpe - cpe_raw) / np.pi)
        cpe = cpe_raw + k * np.pi
        prev_cpe = cpe
        eq = eq * np.exp(-1j * cpe)
        points = np.array([eq[int(c) % N_FFT] for c in LEGACY_DATA_CARRIERS])
        hard = _demap_symbols(points, cfg.constellation)
        coded.append(legacy_deinterleave(hard, n_cbps=cfg.n_cbps, n_bpsc=cfg.n_bpsc))

    coded_stream = np.concatenate(coded) if coded else np.zeros(0, np.uint8)
    coded_stream = convcode.depuncture(coded_stream, cfg.coding_rate)
    scrambled = viterbi.decode(coded_stream, n_info=ann["n_stream_bits"])
    n_padded = n_sym * cfg.n_dbps
    if scrambled.size < n_padded:
        scrambled = np.pad(scrambled, (0, n_padded - scrambled.size))
    data_bits = bitlib.scramble_80211_frame(scrambled, seed=cfg.scrambler_seed)[:n_padded]
    psdu = data_bits[16 : ann["n_stream_bits"] - 6]
    if n_psdu_bits is not None:
        psdu = psdu[:n_psdu_bits]
    return psdu
