"""Pulse-shaping filters used by the PHY modulators.

* Gaussian taps for GFSK (BLE, BT = 0.5)
* half-sine shaping for 802.15.4 OQPSK (MSK-like)
* root-raised-cosine for DSSS chip shaping
* rectangular (sample-and-hold) upsampling
"""

from __future__ import annotations

import numpy as np

from repro.types import ComplexIQ, FloatArray

__all__ = [
    "gaussian_taps",
    "half_sine_pulse",
    "rrc_taps",
    "upsample_hold",
    "shape_chips",
]


def gaussian_taps(bt: float, sps: int, span: int = 3) -> FloatArray:
    """Gaussian filter taps for GFSK with bandwidth-time product ``bt``.

    ``sps`` samples per symbol, ``span`` symbols each side.  Taps are
    normalized to unit sum so the peak frequency deviation of the
    shaped FSK signal is preserved.
    """
    if bt <= 0 or sps < 1 or span < 1:
        raise ValueError("bt, sps and span must be positive")
    t = np.arange(-span * sps, span * sps + 1) / sps
    # Standard GMSK Gaussian response: sigma = sqrt(ln 2) / (2 pi BT).
    sigma = np.sqrt(np.log(2.0)) / (2.0 * np.pi * bt)
    taps = np.exp(-(t**2) / (2.0 * sigma**2))
    return taps / taps.sum()


def half_sine_pulse(sps: int) -> FloatArray:
    """Half-sine chip pulse over one chip period (802.15.4 OQPSK)."""
    if sps < 1:
        raise ValueError("sps must be >= 1")
    n = np.arange(sps)
    return np.sin(np.pi * (n + 0.5) / sps)


def rrc_taps(beta: float, sps: int, span: int = 6) -> FloatArray:
    """Root-raised-cosine taps (unit energy), rolloff ``beta``."""
    if not 0 < beta <= 1:
        raise ValueError("beta must be in (0, 1]")
    n = np.arange(-span * sps, span * sps + 1, dtype=float)
    t = n / sps
    taps = np.empty_like(t)
    for i, ti in enumerate(t):
        if abs(ti) < 1e-12:
            taps[i] = 1.0 - beta + 4.0 * beta / np.pi
        elif abs(abs(ti) - 1.0 / (4.0 * beta)) < 1e-9:
            taps[i] = (beta / np.sqrt(2.0)) * (
                (1.0 + 2.0 / np.pi) * np.sin(np.pi / (4.0 * beta))
                + (1.0 - 2.0 / np.pi) * np.cos(np.pi / (4.0 * beta))
            )
        else:
            num = np.sin(np.pi * ti * (1.0 - beta)) + 4.0 * beta * ti * np.cos(
                np.pi * ti * (1.0 + beta)
            )
            den = np.pi * ti * (1.0 - (4.0 * beta * ti) ** 2)
            taps[i] = num / den
    return taps / np.sqrt(np.sum(taps**2))


def upsample_hold(symbols: np.ndarray, sps: int) -> ComplexIQ:
    """Sample-and-hold upsampling (each value repeated ``sps`` times)."""
    if sps < 1:
        raise ValueError("sps must be >= 1")
    return np.repeat(np.asarray(symbols), sps)


def shape_chips(chips: np.ndarray, sps: int, taps: np.ndarray | None = None) -> ComplexIQ:
    """Upsample ``chips`` by ``sps`` and optionally filter with ``taps``.

    With ``taps`` given, uses impulse upsampling + FIR filtering and
    compensates the filter group delay so output sample ``k*sps`` sits
    at the center of chip ``k``.
    """
    chips = np.asarray(chips, dtype=complex)
    if taps is None:
        return upsample_hold(chips, sps)
    up = np.zeros(chips.size * sps, dtype=complex)
    up[::sps] = chips
    shaped = np.convolve(up, np.asarray(taps, dtype=float))
    delay = (len(taps) - 1) // 2
    return shaped[delay : delay + up.size]
