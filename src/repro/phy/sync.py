"""Packet detection and timing synchronization.

The PHY demodulators in this package take frame timing from waveform
annotations (what a receiver knows *after* sync).  This module supplies
the sync algorithms themselves, so receivers can find packets at
unknown offsets in a sample stream:

* :func:`detect_wifi_n` -- Schmidl&Cox L-STF autocorrelation for coarse
  detection plus L-LTF cross-correlation for fine timing;
* :func:`detect_wifi_b` -- Barker-despread energy plus SFD search;
* :func:`detect_ble` -- preamble + access-address correlation against
  the GFSK frequency track;
* :func:`detect_zigbee` -- PN-symbol despreading and SFD search.

Each returns the sample index where the frame starts (the first
preamble sample), or ``None`` when no packet is found.  ``align``
re-annotates a stream so the ordinary demodulators can run on it.
"""

from __future__ import annotations

import numpy as np

from repro.phy import ble as ble_mod
from repro.phy import bits as bitlib
from repro.phy import wifi_b as wifi_b_mod
from repro.phy import wifi_n as wifi_n_mod
from repro.phy import zigbee as zigbee_mod
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform

__all__ = [
    "detect_wifi_n",
    "detect_wifi_b",
    "detect_ble",
    "detect_zigbee",
    "detect",
    "align",
]


def detect_wifi_n(wave: Waveform, *, threshold: float = 0.75) -> int | None:
    """Find an 802.11n frame via L-STF periodicity + L-LTF timing.

    Schmidl&Cox metric: normalized autocorrelation at the 16-sample
    L-STF period forms a plateau over the STF; the L-LTF
    cross-correlation then pins the exact start.
    """
    x = wave.iq
    period = 16
    window = 128
    if x.size < window + period + 160:
        return None
    corr = x[period:] * np.conj(x[:-period])
    energy = np.abs(x[period:]) ** 2
    num = np.abs(np.convolve(corr, np.ones(window), mode="valid"))
    den = np.convolve(energy, np.ones(window), mode="valid")
    metric = num / np.maximum(den, 1e-12)
    candidates = np.flatnonzero(metric > threshold)
    if candidates.size == 0:
        return None
    coarse = int(candidates[0])

    # Fine timing: correlate the known L-LTF body within a window
    # around the expected position (L-LTF starts 160 samples after the
    # frame start; its 64-sample body begins 32 samples later).
    ltf = wifi_n_mod._l_ltf()[32:96]
    lo = max(coarse - 32, 0)
    hi = min(coarse + 288, x.size - 64)
    scores = np.zeros(max(hi - lo, 0))
    for k, start in enumerate(range(lo, hi)):
        seg = x[start : start + 64]
        val = np.abs(np.vdot(ltf, seg))
        norm = np.linalg.norm(seg) * np.linalg.norm(ltf)
        scores[k] = val / max(norm, 1e-12)
    if scores.size == 0 or scores.max() < 0.5:
        return None
    # The L-LTF body repeats (two 64-sample copies), so near-equal
    # peaks appear 64 samples apart: take the earliest of the top band.
    top = np.flatnonzero(scores >= 0.95 * scores.max())
    best = lo + int(top[0])
    return max(best - 192, 0)  # L-LTF body starts 160+32 into the frame


def detect_wifi_b(wave: Waveform, *, threshold: float = 0.5) -> int | None:
    """Find an 802.11b frame: Barker despread energy ramp + first
    symbol peak."""
    sps = int(round(wave.sample_rate / 11e6))
    kernel = np.repeat(wifi_b_mod.BARKER11, sps)
    kernel = kernel / np.linalg.norm(kernel)
    corr = np.abs(np.convolve(wave.iq, kernel[::-1].conj(), mode="valid"))
    if corr.size < 2 * kernel.size:
        return None
    peak = corr.max()
    if peak < threshold * np.sqrt(kernel.size):
        # Normalized check: require correlation well above the mean.
        if peak < 4.0 * np.median(corr) or peak <= 0:
            return None
    strong = np.flatnonzero(corr > 0.5 * peak)
    if strong.size == 0:
        return None
    # The first strong despread peak marks the end of symbol 0.
    first_peak = int(strong[0])
    start = first_peak - (kernel.size - 1)
    # Snap to the symbol grid by searching +-half a symbol for the
    # locally maximal peak.
    sym = 11 * sps
    lo = max(first_peak - sym // 2, 0)
    hi = min(first_peak + sym // 2, corr.size)
    refined = lo + int(np.argmax(corr[lo:hi]))
    return max(refined - (kernel.size - 1), 0)


def detect_ble(wave: Waveform, *, access_address: int | None = None) -> int | None:
    """Find a BLE frame by correlating the NRZ preamble+AA pattern
    against the discriminator output."""
    aa = access_address if access_address is not None else ble_mod.ADVERTISING_ACCESS_ADDRESS
    aa_bits = bitlib.bits_from_int(aa, 32)
    preamble = np.array([0, 1, 0, 1, 0, 1, 0, 1], np.uint8)
    if aa_bits[0] == 1:
        preamble = 1 - preamble
    pattern = np.concatenate([preamble, aa_bits]).astype(float) * 2.0 - 1.0

    sps = int(round(wave.sample_rate / 1e6))
    dphi = np.angle(wave.iq[1:] * np.conj(wave.iq[:-1]))
    dphi = np.concatenate([[0.0], dphi])
    # Power-gate the discriminator: silence produces full-scale random
    # phase noise that would otherwise swamp the correlation.
    power = np.abs(wave.iq) ** 2
    gate = power / max(np.percentile(power, 95), 1e-12)
    dphi = dphi * np.clip(gate, 0.0, 1.0)
    kernel = np.repeat(pattern, sps)
    kernel = kernel / np.linalg.norm(kernel)
    corr = np.convolve(dphi, kernel[::-1], mode="valid")
    if corr.size == 0:
        return None
    idx = int(np.argmax(corr))
    norm = np.linalg.norm(dphi[idx : idx + kernel.size])
    if norm <= 1e-12 or corr[idx] / norm < 0.6:
        return None
    return idx


def detect_zigbee(wave: Waveform, *, min_preamble_symbols: int = 2) -> int | None:
    """Find an 802.15.4 frame: correlate the zero-symbol PN waveform
    over the SHR preamble."""
    spc = int(round(wave.sample_rate / 2e6))
    ref = zigbee_mod._oqpsk_waveform(zigbee_mod.PN_TABLE[0], zigbee_mod.ZigbeeConfig(samples_per_chip=spc))
    kernel = ref / np.linalg.norm(ref)
    corr = np.abs(np.convolve(wave.iq, kernel[::-1].conj(), mode="valid"))
    if corr.size == 0:
        return None
    sym_len = zigbee_mod.CHIPS_PER_SYMBOL * spc
    peak = corr.max()
    if peak <= 1e-12:
        return None
    strong = np.flatnonzero(corr > 0.7 * peak)
    if strong.size == 0:
        return None
    first = int(strong[0])
    # Verify the preamble repeats at the symbol period.
    repeats = sum(
        1
        for k in range(1, min_preamble_symbols + 1)
        if first + k * sym_len < corr.size and corr[first + k * sym_len] > 0.5 * peak
    )
    if repeats < min_preamble_symbols:
        return None
    return first


_DETECTORS = {
    Protocol.WIFI_N: detect_wifi_n,
    Protocol.WIFI_B: detect_wifi_b,
    Protocol.BLE: detect_ble,
    Protocol.ZIGBEE: detect_zigbee,
}


def detect(wave: Waveform, protocol: Protocol) -> int | None:
    """Dispatch to the protocol's detector."""
    return _DETECTORS[protocol](wave)


def align(stream: Waveform, template: Waveform, start: int) -> Waveform:
    """Cut ``stream`` at ``start`` and copy frame annotations from the
    transmitted ``template`` so the standard demodulators can run."""
    cut = stream.sliced(start)
    cut.annotations = dict(template.annotations)
    return cut
