"""Shared plumbing for the batched PHY/matching entry points.

Every ``*_batch`` kernel follows the same ragged-input policy: inputs
are grouped by a per-item *dispatch key* (packet length plus whatever
configuration changes the kernel's control flow), each group is
processed with one vectorized dispatch, and results are scattered back
in input order.  Grouping -- rather than padding or masking -- is what
makes the scalar-equivalence guarantee structural: within a group every
item takes exactly the arithmetic the single-packet kernel would, just
with a leading batch axis, so there are no padded lanes whose garbage
could leak into reductions.

Empty batches are rejected eagerly with a :class:`ValueError` naming
the entry point; a silent empty return would let a caller's broken
chunking pass unnoticed.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, TypeVar

__all__ = ["require_batch", "group_indices", "run_grouped"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def require_batch(items: Sequence[object], where: str) -> None:
    """Raise ``ValueError`` if ``items`` is an empty batch."""
    if len(items) == 0:
        raise ValueError(
            f"{where}: empty batch -- batched entry points require at "
            "least one item"
        )


def group_indices(
    keys: Sequence[Hashable],
) -> list[tuple[Hashable, list[int]]]:
    """Stable grouping of positions by key (first-seen key order)."""
    groups: dict[Hashable, list[int]] = {}
    for i, key in enumerate(keys):
        groups.setdefault(key, []).append(i)
    return list(groups.items())


def run_grouped(
    items: Sequence[_T],
    key_fn: Callable[[_T], Hashable],
    group_fn: Callable[[list[_T]], Sequence[_R]],
    *,
    where: str,
) -> list[_R]:
    """Apply the ragged-batch policy: group, dispatch, scatter.

    ``group_fn`` receives the items of one group (all sharing a
    dispatch key) and must return one result per item, in order.
    Results come back aligned with the original ``items`` order.
    """
    require_batch(items, where)
    results: list[_R | None] = [None] * len(items)
    for _, idx in group_indices([key_fn(item) for item in items]):
        out = group_fn([items[i] for i in idx])
        if len(out) != len(idx):
            raise RuntimeError(
                f"{where}: group dispatch returned {len(out)} result(s) "
                f"for {len(idx)} item(s)"
            )
        for i, res in zip(idx, out):
            results[i] = res
    return results  # type: ignore[return-value]
