"""IEEE 802.15.4 2.4 GHz physical layer (OQPSK/DSSS, complex baseband).

Implements the ZigBee excitation the paper uses: 250 kbps, 62.5 ksym/s,
each 4-bit symbol spread to a 32-chip PN sequence at 2 Mchip/s, OQPSK
with half-sine pulse shaping and the half-chip I/Q offset (§2.4
"ZigBee").

The receiver reconstructs chip soft values and picks the best-matched
PN sequence among the 16 -- exactly the decision rule of commodity
radios that the paper's gamma >= 3 argument relies on: a tag phase flip
complements a symbol's chips, which still correlates decisively with a
*different* table entry, while the flip boundary only damages the
symbol it cuts through.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Sequence

import numpy as np

from repro.types import BitArray, ComplexIQ, Hertz

from repro import perf
from repro.core import contracts
from repro.core.backend import get_backend
from repro.phy import bits as bitlib
from repro.phy import pulse
from repro.phy.batch import run_grouped
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform

__all__ = [
    "PN_TABLE",
    "ZigbeeConfig",
    "modulate",
    "demodulate",
    "modulate_batch",
    "demodulate_batch",
    "estimate_cfo",
    "ZigbeeDecodeResult",
    "CHIPS_PER_SYMBOL",
]

CHIPS_PER_SYMBOL = 32
CHIP_RATE = 2e6
SYMBOL_RATE = 62.5e3

#: PN sequence for data symbol 0 (802.15.4-2015 Table 12-1, c0..c31).
_PN0 = np.array(
    [1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
     0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0],
    dtype=np.uint8,
)


def _build_pn_table() -> np.ndarray:
    """All 16 PN sequences: symbols 1-7 are 4-chip cyclic shifts of
    symbol 0; symbols 8-15 conjugate (invert the odd/Q chips)."""
    table = np.empty((16, CHIPS_PER_SYMBOL), dtype=np.uint8)
    for k in range(8):
        table[k] = np.roll(_PN0, 4 * k)
    q_mask = np.zeros(CHIPS_PER_SYMBOL, dtype=np.uint8)
    q_mask[1::2] = 1
    for k in range(8):
        table[8 + k] = table[k] ^ q_mask
    return table


PN_TABLE = _build_pn_table()
_PN_BIPOLAR = 2.0 * PN_TABLE.astype(float) - 1.0

#: SFD value 0xA7 -> symbols [7, 0xA] (low nibble first).
_SFD_SYMBOLS = (0x7, 0xA)

#: Number of zero symbols in the SHR preamble (4 bytes of zeros).
_N_PREAMBLE_SYMBOLS = 8


@dataclass(frozen=True)
class ZigbeeConfig:
    """Modulator configuration.

    ``samples_per_chip`` oversamples the 2 Mchip/s stream (the sample
    rate is ``2e6 * samples_per_chip``).  Each I/Q chip lasts two chip
    periods (1 us) with the Q branch offset by half of that.
    """

    samples_per_chip: int = 4

    @property
    def sample_rate(self) -> Hertz:
        return CHIP_RATE * self.samples_per_chip

    def __post_init__(self) -> None:
        if self.samples_per_chip < 2 or self.samples_per_chip % 2:
            raise ValueError("samples_per_chip must be an even integer >= 2")


@contracts.shapes("n_bits -> n_bits//4")
def symbols_from_bits(bits: np.ndarray) -> BitArray:
    """Pack bits into 4-bit symbols, low nibble first (LSB-first bits)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 4:
        raise ValueError("bit count must be a multiple of 4")
    blocks = arr.reshape(-1, 4)
    return (blocks * np.array([1, 2, 4, 8], dtype=np.uint8)).sum(axis=1)


@contracts.shapes("n_sym -> n_sym*4")
def bits_from_symbols(symbols: np.ndarray) -> BitArray:
    """Inverse of :func:`symbols_from_bits`."""
    arr = np.asarray(symbols, dtype=np.uint8)
    return ((arr[:, None] >> np.arange(4, dtype=np.uint8)) & 1).astype(np.uint8).ravel()


@contracts.shapes("n")
@contracts.dtypes(np.uint8)
def _oqpsk_waveform(chips: np.ndarray, cfg: ZigbeeConfig) -> ComplexIQ:
    """Half-sine OQPSK: even chips -> I, odd chips -> Q (offset Tc/2)."""
    bipolar = 2.0 * chips.astype(float) - 1.0
    i_chips = bipolar[0::2]
    q_chips = bipolar[1::2]
    # Each I (and Q) chip occupies 1 us = 2 chip periods; consecutive
    # same-branch pulses abut without overlap, so the waveform is just
    # the scaled pulses laid out back to back.
    sps_ichip = 2 * cfg.samples_per_chip
    p = pulse.half_sine_pulse(sps_ichip)
    half = sps_ichip // 2
    n_total = chips.size * cfg.samples_per_chip + half
    i_wave = np.zeros(n_total)
    q_wave = np.zeros(n_total)
    i_wave[: i_chips.size * sps_ichip] = (i_chips[:, None] * p).ravel()
    q_wave[half : half + q_chips.size * sps_ichip] = (q_chips[:, None] * p).ravel()
    return (i_wave + 1j * q_wave) / np.sqrt(2.0)


def _payload_bits(
    payload: bytes | np.ndarray, *, include_fcs: bool
) -> BitArray:
    """Normalize a PSDU (bytes or bit array) to its on-air bit stream."""
    if isinstance(payload, (bytes, bytearray)):
        payload_bits = bitlib.bits_from_bytes(payload)
    else:
        payload_bits = np.asarray(payload, dtype=np.uint8)
        if payload_bits.size % 4:
            raise ValueError("payload bit count must be a multiple of 4")
    if include_fcs:
        payload_bits = np.concatenate(
            [payload_bits, bitlib.crc16_ccitt(payload_bits)]
        )
    return payload_bits


@contracts.dtypes(np.uint8)
def modulate(
    payload: bytes | np.ndarray,
    config: ZigbeeConfig | None = None,
    *,
    include_fcs: bool = False,
) -> Waveform:
    """Modulate a PSDU (bytes or bit array) into an 802.15.4 waveform.

    The frame is SHR (8 zero symbols + SFD 0xA7) + PHR (length byte) +
    PSDU symbols.  With ``include_fcs`` the 802.15.4 CRC-16 (ITU-T,
    appended little-endian) is added to the PSDU -- the paper turns CRC
    checking *off* at the NICs, hence the default.
    """
    perf.dispatch("zigbee.modulate", 1, batched=False)
    cfg = config or ZigbeeConfig()
    payload_bits = _payload_bits(payload, include_fcs=include_fcs)

    phr = bitlib.bits_from_int((payload_bits.size // 8) & 0x7F, 8)
    header_symbols = np.concatenate(
        [
            np.zeros(_N_PREAMBLE_SYMBOLS, dtype=np.uint8),
            np.array(_SFD_SYMBOLS, dtype=np.uint8),
            symbols_from_bits(phr),
        ]
    )
    payload_symbols = symbols_from_bits(payload_bits)
    symbols = np.concatenate([header_symbols, payload_symbols])
    chips = PN_TABLE[symbols].ravel()
    iq = _oqpsk_waveform(chips, cfg)

    samples_per_symbol = CHIPS_PER_SYMBOL * cfg.samples_per_chip
    return Waveform(
        iq=iq,
        sample_rate=cfg.sample_rate,
        annotations={
            "protocol": Protocol.ZIGBEE,
            "payload_start": header_symbols.size * samples_per_symbol,
            "samples_per_symbol": samples_per_symbol,
            "n_payload_symbols": payload_symbols.size,
            "n_header_symbols": header_symbols.size,
            "has_fcs": include_fcs,
        },
    )


@dataclass
class ZigbeeDecodeResult:
    """Receiver output.

    ``symbols`` are the best-match PN decisions for the PSDU;
    ``payload_bits`` the corresponding bit stream; ``correlations`` the
    winning normalized correlation per symbol (a confidence measure the
    overlay decoder uses to skip flip-boundary-damaged symbols).
    """

    payload_bits: np.ndarray
    symbols: np.ndarray
    correlations: np.ndarray
    sfd_ok: bool
    fcs_ok: bool | None = None


def _chip_matched_outputs(wave: Waveform, n_chips: int) -> ComplexIQ:
    """Complex matched-filter outputs per chip (half-sine correlation).

    Each I (Q) chip is a half-sine pulse spanning 2 chip periods;
    correlating against the pulse (instead of point-sampling the peak)
    collects the full chip energy.  Keeping the outputs complex lets
    the demodulator apply per-symbol phase tracking before taking the
    I/Q projections.
    """
    ann = wave.annotations
    spc = ann["samples_per_symbol"] // CHIPS_PER_SYMBOL
    sps_ichip = 2 * spc
    half = sps_ichip // 2
    p = pulse.half_sine_pulse(sps_ichip)
    p = p / np.sum(p)
    iq = wave.iq
    n_i = (n_chips + 1) // 2
    n_q = n_chips // 2
    # I pulses tile [0, n_i * len); Q pulses the same grid offset by
    # half a pulse.  Zero-padding the capture keeps truncated trailing
    # chips equal to the short-segment dot product.
    needed = half + n_q * sps_ichip if n_q else n_i * sps_ichip
    needed = max(needed, n_i * sps_ichip)
    padded = iq if iq.size >= needed else np.pad(iq, (0, needed - iq.size))
    out = np.zeros(n_chips, dtype=complex)
    out[0::2] = padded[: n_i * sps_ichip].reshape(n_i, sps_ichip) @ p
    if n_q:
        out[1::2] = padded[half : half + n_q * sps_ichip].reshape(n_q, sps_ichip) @ p
    return out


def estimate_cfo(wave: Waveform) -> Hertz:
    """CFO estimate from the SHR preamble's repeating zero symbols.

    Consecutive preamble symbols are identical 16 us waveforms, so the
    phase of their lag-one-symbol correlation measures the offset
    (unambiguous to +-31.25 kHz -- ample for 802.15.4's +-40 ppm).
    """
    ann = wave.annotations
    sym_len = ann["samples_per_symbol"]
    n_pre = min(ann.get("n_header_symbols", 10) - 2, 7)
    if n_pre < 1 or wave.iq.size < (n_pre + 1) * sym_len:
        return 0.0
    a = wave.iq[: n_pre * sym_len]
    b = wave.iq[sym_len : (n_pre + 1) * sym_len]
    corr = np.sum(b * np.conj(a))
    period_s = sym_len / wave.sample_rate
    return float(np.angle(corr) / (2.0 * np.pi * period_s))


def demodulate(wave: Waveform, *, correct_cfo: bool = True) -> ZigbeeDecodeResult:
    """Best-match PN sequence detection, as commodity radios do.

    ``correct_cfo`` derotates the waveform by the preamble-estimated
    frequency offset before the coherent chip sampling.
    """
    perf.dispatch("zigbee.demodulate", 1, batched=False)
    ann = wave.annotations
    if ann.get("protocol") is not Protocol.ZIGBEE:
        raise ValueError("waveform is not annotated as ZigBee")
    if correct_cfo:
        cfo = estimate_cfo(wave)
        if abs(cfo) > 0.5:
            wave = wave.frequency_shifted(-cfo)
            wave.annotations = ann
    n_header = ann["n_header_symbols"]
    n_payload = ann["n_payload_symbols"]
    n_symbols = n_header + n_payload
    z = _chip_matched_outputs(wave, n_symbols * CHIPS_PER_SYMBOL)
    # Per-chip projection axis: I chips live on the real axis, Q chips
    # on the imaginary axis.
    q_axis = np.resize(np.array([1.0, 1j], dtype=np.complex128), CHIPS_PER_SYMBOL)

    # Decision-directed phase tracking: residual CFO/phase noise is
    # re-estimated from each decided symbol (a one-shot derotation is
    # not enough over a multi-millisecond coherent packet).
    symbols = np.empty(n_symbols, dtype=np.uint8)
    corrs = np.empty(n_symbols)
    phase = 0.0
    for k in range(n_symbols):
        zk = z[k * CHIPS_PER_SYMBOL : (k + 1) * CHIPS_PER_SYMBOL]
        rotated = zk * np.exp(-1j * phase)
        seg = np.where(
            np.arange(CHIPS_PER_SYMBOL) % 2 == 0, rotated.real, rotated.imag
        )
        scores = _PN_BIPOLAR @ seg
        best = int(np.argmax(scores))
        symbols[k] = best
        norm = np.linalg.norm(seg) * np.sqrt(CHIPS_PER_SYMBOL)
        corrs[k] = scores[best] / norm if norm > 1e-12 else 0.0
        # Residual phase of this symbol relative to its decision: the
        # ideal rotated outputs are (+-1) on I chips and (+-j) on Q
        # chips, so projecting onto the decided chips re-centers them
        # on the real axis.
        ideal = _PN_BIPOLAR[best] * q_axis
        residual = np.sum(rotated * np.conj(ideal))
        if abs(residual) > 1e-12:
            phase += 0.5 * float(np.angle(residual))

    sfd_ok = bool(
        n_header >= _N_PREAMBLE_SYMBOLS + 2
        and tuple(symbols[_N_PREAMBLE_SYMBOLS : _N_PREAMBLE_SYMBOLS + 2])
        == _SFD_SYMBOLS
    )
    payload_symbols = symbols[n_header:]
    payload_bits = bits_from_symbols(payload_symbols)
    fcs_ok: bool | None = None
    if ann.get("has_fcs") and payload_bits.size >= 16:
        body, fcs_rx = payload_bits[:-16], payload_bits[-16:]
        fcs_ok = bool(np.array_equal(bitlib.crc16_ccitt(body), fcs_rx))
        payload_bits = body
    return ZigbeeDecodeResult(
        payload_bits=payload_bits,
        symbols=payload_symbols,
        correlations=corrs[n_header:],
        sfd_ok=sfd_ok,
        fcs_ok=fcs_ok,
    )


# ----------------------------------------------------------------------
# batched entry points
# ----------------------------------------------------------------------
@contracts.shapes("b,n")
@contracts.dtypes(np.uint8)
def _oqpsk_waveform_batch(
    chips: np.ndarray, cfg: ZigbeeConfig, xp: ModuleType
) -> np.ndarray:
    """Batched :func:`_oqpsk_waveform`: ``chips`` is ``(B, n_chips)``."""
    bipolar = 2.0 * chips.astype(float) - 1.0
    i_chips = bipolar[:, 0::2]
    q_chips = bipolar[:, 1::2]
    sps_ichip = 2 * cfg.samples_per_chip
    p = pulse.half_sine_pulse(sps_ichip)
    half = sps_ichip // 2
    n_batch, n_chips = chips.shape
    n_total = n_chips * cfg.samples_per_chip + half
    # Writing I/Q straight into one complex buffer skips the separate
    # i_wave/q_wave temporaries the per-packet path can afford but a
    # batch cannot.  The final scaling stays a complex-by-real divide
    # (NOT a pre-scaled pulse): numpy's complex division does not round
    # like two per-component float divisions, and bit-identity with the
    # scalar path requires the identical ufunc on identical operands.
    wave = xp.zeros((n_batch, n_total), dtype=complex)
    wave.real[:, : i_chips.shape[1] * sps_ichip] = (
        i_chips[:, :, None] * p
    ).reshape(n_batch, -1)
    wave.imag[:, half : half + q_chips.shape[1] * sps_ichip] = (
        q_chips[:, :, None] * p
    ).reshape(n_batch, -1)
    return wave / np.sqrt(2.0)


@contracts.dtypes(np.uint8)
def modulate_batch(
    payloads: Sequence[bytes | np.ndarray],
    config: ZigbeeConfig | None = None,
    *,
    include_fcs: bool = False,
) -> list[Waveform]:
    """Modulate N PSDUs with one vectorized dispatch per payload length.

    Bit-identical to ``[modulate(p, config, include_fcs=...) for p in
    payloads]`` -- every sample comes from the same elementwise
    arithmetic, just with a leading batch axis (see
    :mod:`repro.phy.batch` for the ragged-input grouping policy).
    """
    cfg = config or ZigbeeConfig()
    all_bits = [_payload_bits(p, include_fcs=include_fcs) for p in payloads]
    return run_grouped(
        all_bits,
        lambda b: b.size,
        lambda group: _modulate_group(group, cfg, include_fcs=include_fcs),
        where="zigbee.modulate_batch",
    )


def _modulate_group(
    bits_group: list[BitArray], cfg: ZigbeeConfig, *, include_fcs: bool
) -> list[Waveform]:
    xp = get_backend().xp
    n_batch = len(bits_group)
    perf.dispatch("zigbee.modulate", n_batch, batched=True)
    bits = np.stack(bits_group)  # (B, n_bits) -- equal length by grouping
    phr = bitlib.bits_from_int((bits.shape[1] // 8) & 0x7F, 8)
    header_symbols = np.concatenate(
        [
            np.zeros(_N_PREAMBLE_SYMBOLS, dtype=np.uint8),
            np.array(_SFD_SYMBOLS, dtype=np.uint8),
            symbols_from_bits(phr),
        ]
    )
    blocks = bits.reshape(n_batch, -1, 4)
    payload_symbols = (blocks * np.array([1, 2, 4, 8], dtype=np.uint8)).sum(
        axis=2
    )
    symbols = np.concatenate(
        [np.tile(header_symbols, (n_batch, 1)), payload_symbols], axis=1
    )
    chips = PN_TABLE[symbols].reshape(n_batch, -1)
    iq = _oqpsk_waveform_batch(chips, cfg, xp)

    samples_per_symbol = CHIPS_PER_SYMBOL * cfg.samples_per_chip
    n_payload_symbols = payload_symbols.shape[1]
    return [
        Waveform(
            iq=iq[b].copy(),
            sample_rate=cfg.sample_rate,
            annotations={
                "protocol": Protocol.ZIGBEE,
                "payload_start": header_symbols.size * samples_per_symbol,
                "samples_per_symbol": samples_per_symbol,
                "n_payload_symbols": n_payload_symbols,
                "n_header_symbols": header_symbols.size,
                "has_fcs": include_fcs,
            },
        )
        for b in range(n_batch)
    ]


def demodulate_batch(
    waves: Sequence[Waveform], *, correct_cfo: bool = True
) -> list[ZigbeeDecodeResult]:
    """Batched :func:`demodulate`: one dispatch per frame geometry.

    Every result field -- ``symbols``, ``payload_bits``,
    ``correlations``, ``sfd_ok``, ``fcs_ok`` -- is bit-identical to the
    scalar loop; float-sensitive steps (CFO mix, PN scoring, norms)
    deliberately mirror the scalar path's operation shapes.
    """

    def key(wave: Waveform) -> tuple:
        ann = wave.annotations
        if ann.get("protocol") is not Protocol.ZIGBEE:
            raise ValueError("waveform is not annotated as ZigBee")
        return (
            wave.iq.size,
            float(wave.sample_rate),
            int(ann["n_header_symbols"]),
            int(ann["n_payload_symbols"]),
            int(ann["samples_per_symbol"]),
            bool(ann.get("has_fcs")),
        )

    return run_grouped(
        list(waves),
        key,
        lambda group: _demodulate_group(group, correct_cfo=correct_cfo),
        where="zigbee.demodulate_batch",
    )


def _demodulate_group(
    waves: list[Waveform], *, correct_cfo: bool
) -> list[ZigbeeDecodeResult]:
    xp = get_backend().xp
    n_batch = len(waves)
    perf.dispatch("zigbee.demodulate", n_batch, batched=True)
    ann = waves[0].annotations
    sample_rate = waves[0].sample_rate
    iq = xp.stack([w.iq for w in waves])  # (B, n_samples)

    if correct_cfo:
        cfo = _estimate_cfo_batch(iq, ann, sample_rate, xp)
        shift = xp.where(xp.abs(cfo) > 0.5, -cfo, 0.0)
        if bool(xp.any(xp.abs(shift) > 0.0)):
            # Same mix expression as Waveform.frequency_shifted, with a
            # per-row shift; rows below the threshold get shift 0, and
            # multiplying by exp(0j) == 1+0j is exact.  The mix runs
            # row by row because numpy's complex multiply rounds
            # differently on a fused (B, n) operand than on the 1-D
            # rows the scalar path sees.
            t = xp.arange(iq.shape[1]) / sample_rate
            iq = xp.stack(
                [
                    iq[b] * xp.exp(2j * np.pi * shift[b] * t)
                    for b in range(n_batch)
                ]
            )

    n_header = int(ann["n_header_symbols"])
    n_payload = int(ann["n_payload_symbols"])
    n_symbols = n_header + n_payload
    z = _chip_matched_outputs_batch(
        iq, n_symbols * CHIPS_PER_SYMBOL, int(ann["samples_per_symbol"]), xp
    )
    q_axis = np.resize(
        np.array([1.0, 1j], dtype=np.complex128), CHIPS_PER_SYMBOL
    )
    even = np.arange(CHIPS_PER_SYMBOL) % 2 == 0

    symbols = np.empty((n_batch, n_symbols), dtype=np.uint8)
    corrs = np.empty((n_batch, n_symbols))
    phase = xp.zeros(n_batch)
    for k in range(n_symbols):
        zk = z[:, k * CHIPS_PER_SYMBOL : (k + 1) * CHIPS_PER_SYMBOL]
        rotated = zk * xp.exp(-1j * phase)[:, None]
        seg = xp.where(even[None, :], rotated.real, rotated.imag)
        # Stacked per-packet gemvs: each (16, 32) @ (32, 1) slice runs
        # the scalar path's ``_PN_BIPOLAR @ seg`` BLAS call unchanged,
        # so the scores stay bit-identical at every batch size.  The
        # batch axis must stay OUT of the per-slice operands: a fused
        # (B, 32) @ (32, 16) gemm -- and even a (16, B, 32) @
        # (16, 32, 1) stacking, at B=1 -- rounds differently.
        scores = xp.matmul(_PN_BIPOLAR[None, :, :], seg[:, :, None])[:, :, 0]
        best = scores.argmax(axis=1)
        symbols[:, k] = best
        # Row norms via stacked (1, 32) @ (32, 1) matmuls: each slice
        # runs the same BLAS dot as the scalar ``np.linalg.norm(seg)``,
        # where the axis-reduction form drifts by an ulp.
        sq = xp.matmul(seg[:, None, :], seg[:, :, None])[:, 0, 0]
        norm = xp.sqrt(sq) * np.sqrt(CHIPS_PER_SYMBOL)
        safe = norm > 1e-12
        denom = xp.where(safe, norm, 1.0)
        best_score = xp.take_along_axis(scores, best[:, None], axis=1)[:, 0]
        corrs[:, k] = xp.where(safe, best_score / denom, 0.0)
        ideal = _PN_BIPOLAR[best] * q_axis
        residual = xp.sum(rotated * xp.conj(ideal), axis=1)
        phase = xp.where(
            xp.abs(residual) > 1e-12,
            phase + 0.5 * xp.angle(residual),
            phase,
        )

    sfd_ok_rows = (
        n_header >= _N_PREAMBLE_SYMBOLS + 2
        and n_symbols >= _N_PREAMBLE_SYMBOLS + 2
    ) and (
        (symbols[:, _N_PREAMBLE_SYMBOLS] == _SFD_SYMBOLS[0])
        & (symbols[:, _N_PREAMBLE_SYMBOLS + 1] == _SFD_SYMBOLS[1])
    )
    payload_symbols = symbols[:, n_header:]
    payload_bits = (
        (payload_symbols[:, :, None] >> np.arange(4, dtype=np.uint8)) & 1
    ).astype(np.uint8)
    payload_bits = payload_bits.reshape(n_batch, -1)

    results = []
    for b in range(n_batch):
        bits_b = payload_bits[b]
        fcs_ok: bool | None = None
        if ann.get("has_fcs") and bits_b.size >= 16:
            body, fcs_rx = bits_b[:-16], bits_b[-16:]
            fcs_ok = bool(np.array_equal(bitlib.crc16_ccitt(body), fcs_rx))
            bits_b = body
        results.append(
            ZigbeeDecodeResult(
                payload_bits=bits_b.copy(),
                symbols=payload_symbols[b].copy(),
                correlations=corrs[b, n_header:].copy(),
                sfd_ok=bool(np.asarray(sfd_ok_rows)[b])
                if not isinstance(sfd_ok_rows, bool)
                else sfd_ok_rows,
                fcs_ok=fcs_ok,
            )
        )
    return results


@contracts.shapes("b,n -> b")
def _estimate_cfo_batch(
    iq: np.ndarray, ann: dict, sample_rate: Hertz, xp: ModuleType
) -> np.ndarray:
    """Row-wise :func:`estimate_cfo` over stacked captures."""
    sym_len = int(ann["samples_per_symbol"])
    n_pre = min(int(ann.get("n_header_symbols", 10)) - 2, 7)
    if n_pre < 1 or iq.shape[1] < (n_pre + 1) * sym_len:
        return xp.zeros(iq.shape[0])
    a = iq[:, : n_pre * sym_len]
    b = iq[:, sym_len : (n_pre + 1) * sym_len]
    # numpy's complex multiply rounds differently on strided 2-D views
    # than on 1-D rows (SIMD loop selection), so a fused
    # ``sum(b * conj(a), axis=1)`` drifts 1 ulp from the scalar
    # estimator; row-wise 1-D products reproduce it bit-for-bit.
    corr = xp.stack(
        [xp.sum(b[k] * xp.conj(a[k])) for k in range(iq.shape[0])]
    )
    period_s = sym_len / sample_rate
    return xp.angle(corr) / (2.0 * np.pi * period_s)


@contracts.shapes("b,n")
def _chip_matched_outputs_batch(
    iq: np.ndarray, n_chips: int, samples_per_symbol: int, xp: ModuleType
) -> np.ndarray:
    """Batched :func:`_chip_matched_outputs` over ``(B, n)`` captures."""
    spc = samples_per_symbol // CHIPS_PER_SYMBOL
    sps_ichip = 2 * spc
    half = sps_ichip // 2
    p = pulse.half_sine_pulse(sps_ichip)
    p = p / np.sum(p)
    n_batch = iq.shape[0]
    n_i = (n_chips + 1) // 2
    n_q = n_chips // 2
    needed = half + n_q * sps_ichip if n_q else n_i * sps_ichip
    needed = max(needed, n_i * sps_ichip)
    if iq.shape[1] < needed:
        iq = xp.pad(iq, ((0, 0), (0, needed - iq.shape[1])))
    out = xp.zeros((n_batch, n_chips), dtype=complex)
    out[:, 0::2] = iq[:, : n_i * sps_ichip].reshape(n_batch, n_i, sps_ichip) @ p
    if n_q:
        out[:, 1::2] = (
            iq[:, half : half + n_q * sps_ichip].reshape(
                n_batch, n_q, sps_ichip
            )
            @ p
        )
    return out
