"""The complex-baseband waveform container every modulator emits.

A :class:`Waveform` couples IQ samples with their sample rate plus the
annotations downstream stages need (protocol, symbol boundaries, where
the payload starts).  It is deliberately a thin, immutable-ish value
type: DSP transforms return new instances.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.types import ComplexIQ, Decibels, FloatArray, Hertz, Samples, Seconds
from scipy import signal as sp_signal

__all__ = ["Waveform"]


@dataclass
class Waveform:
    """Complex-baseband samples plus metadata.

    Attributes
    ----------
    iq:
        Complex baseband samples (1-D ``complex128``).
    sample_rate:
        Samples per second.
    center_offset_hz:
        Offset of this waveform's channel center from the simulation's
        band reference (used when mixing excitations of different
        channels, Fig 16).
    annotations:
        Free-form metadata.  Modulators set at least ``protocol``,
        ``payload_start`` (sample index of the first payload symbol)
        and ``samples_per_symbol``.
    """

    iq: ComplexIQ
    sample_rate: Hertz
    center_offset_hz: Hertz = 0.0
    annotations: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.iq = np.asarray(self.iq, dtype=np.complex128)
        if self.iq.ndim != 1:
            raise ValueError(f"iq must be 1-D, got shape {self.iq.shape}")
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> Samples:
        return self.iq.size

    @property
    def duration_s(self) -> Seconds:
        """Length in seconds."""
        return self.iq.size / self.sample_rate

    @property
    def duration(self) -> Seconds:
        """Deprecated alias of :attr:`duration_s`."""
        warnings.warn(
            "Waveform.duration is deprecated; use Waveform.duration_s",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.duration_s

    def times(self) -> FloatArray:
        """Per-sample timestamps in seconds."""
        return np.arange(self.iq.size) / self.sample_rate

    def mean_power(self) -> float:
        """Mean |iq|^2 (linear power, carrier-normalized units)."""
        if not self.iq.size:
            return 0.0
        return float(np.mean(np.abs(self.iq) ** 2))

    def envelope(self) -> FloatArray:
        """Instantaneous envelope |iq| -- what an ideal detector sees."""
        return np.abs(self.iq)

    # ------------------------------------------------------------------
    # transforms (all return new Waveforms)
    # ------------------------------------------------------------------
    def scaled(self, gain: float) -> "Waveform":
        """Amplitude-scale by ``gain`` (linear)."""
        return replace(self, iq=self.iq * gain, annotations=dict(self.annotations))

    def scaled_db(self, gain_db: Decibels) -> "Waveform":
        """Amplitude-scale by ``gain_db`` (power dB)."""
        return self.scaled(10.0 ** (gain_db / 20.0))

    def frequency_shifted(self, shift_hz: Hertz) -> "Waveform":
        """Mix by ``exp(j 2 pi shift t)`` and track the channel offset."""
        t = self.times()
        iq = self.iq * np.exp(2j * np.pi * shift_hz * t)
        return replace(
            self,
            iq=iq,
            center_offset_hz=self.center_offset_hz + shift_hz,
            annotations=dict(self.annotations),
        )

    def resampled(
        self,
        new_rate_hz: Hertz | None = None,
        *,
        new_rate: float | None = None,  # reproflow: disable=U004
    ) -> "Waveform":
        """Polyphase-resample to ``new_rate_hz``.

        ``new_rate=`` is a deprecated alias of ``new_rate_hz=``.
        """
        if new_rate is not None:
            warnings.warn(
                "Waveform.resampled(new_rate=...) is deprecated; "
                "use new_rate_hz=...",
                DeprecationWarning,
                stacklevel=2,
            )
            if new_rate_hz is None:
                new_rate_hz = new_rate
        if new_rate_hz is None:
            raise TypeError("resampled() missing required argument 'new_rate_hz'")
        if new_rate_hz <= 0:
            raise ValueError("new_rate_hz must be positive")
        if abs(new_rate_hz - self.sample_rate) < 1e-9:
            return replace(self, annotations=dict(self.annotations))
        from fractions import Fraction

        frac = Fraction(new_rate_hz / self.sample_rate).limit_denominator(1000)
        iq = sp_signal.resample_poly(self.iq, frac.numerator, frac.denominator)
        ratio = new_rate_hz / self.sample_rate
        ann = dict(self.annotations)
        for key in ("payload_start", "samples_per_symbol"):
            if key in ann:
                ann[key] = int(round(ann[key] * ratio))
        return Waveform(
            iq=iq,
            sample_rate=new_rate_hz,
            center_offset_hz=self.center_offset_hz,
            annotations=ann,
        )

    def padded(self, before: Samples = 0, after: Samples = 0) -> "Waveform":
        """Zero-pad with silence; shifts ``payload_start`` accordingly."""
        iq = np.concatenate(
            [np.zeros(before, complex), self.iq, np.zeros(after, complex)]
        )
        ann = dict(self.annotations)
        if "payload_start" in ann:
            ann["payload_start"] = ann["payload_start"] + before
        return replace(self, iq=iq, annotations=ann)

    def sliced(self, start: Samples, stop: Samples | None = None) -> "Waveform":
        """Return samples [start, stop) as a new waveform."""
        return replace(
            self, iq=self.iq[start:stop].copy(), annotations=dict(self.annotations)
        )

    def with_annotations(self, **extra: Any) -> "Waveform":
        """Copy with additional annotations."""
        ann = dict(self.annotations)
        ann.update(extra)
        return replace(self, annotations=ann)

    def copy(self) -> "Waveform":
        return replace(self, iq=self.iq.copy(), annotations=dict(self.annotations))

    @staticmethod
    def silence(n_samples: Samples, sample_rate: Hertz) -> "Waveform":
        """All-zero waveform (idle air)."""
        return Waveform(np.zeros(n_samples, complex), sample_rate)

    @staticmethod
    def concatenate(waveforms: list["Waveform"]) -> "Waveform":
        """Join waveforms back-to-back (must share a sample rate)."""
        if not waveforms:
            raise ValueError("need at least one waveform")
        rate = waveforms[0].sample_rate
        if any(abs(w.sample_rate - rate) > 1e-6 for w in waveforms):
            raise ValueError("waveforms must share a sample rate")
        iq = np.concatenate([w.iq for w in waveforms])
        return Waveform(iq, rate)
