"""IEEE 802.11 rate-1/2 binary convolutional code (K=7, g0=133, g1=171).

The encoder here plus :mod:`repro.phy.viterbi` form the BCC pair used by
the 802.11n data path at MCS0 (the only coded rate the paper's overlay
modulation exercises).
"""

from __future__ import annotations

import numpy as np

from repro.types import BitArray, FloatArray

__all__ = [
    "G0",
    "G1",
    "CONSTRAINT",
    "ERASURE",
    "PUNCTURE_PATTERNS",
    "encode",
    "expected_output_len",
    "puncture",
    "depuncture",
    "depuncture_soft",
]

#: Marker for punctured positions fed to the Viterbi decoder.
ERASURE = 2

#: 802.11 puncturing patterns (§17.3.5.6): per coding-rate keep masks
#: over the interleaved (A, B) output stream.
PUNCTURE_PATTERNS: dict[str, tuple[int, ...]] = {
    "1/2": (1, 1),
    "2/3": (1, 1, 1, 0),
    "3/4": (1, 1, 1, 0, 0, 1),
    "5/6": (1, 1, 1, 0, 0, 1, 1, 0, 0, 1),
}

#: Generator polynomials, octal 133 / 171 per 802.11-2016 §17.3.5.6.
G0 = 0o133
G1 = 0o171
CONSTRAINT = 7


def _taps(poly: int) -> np.ndarray:
    return np.array([(poly >> i) & 1 for i in range(CONSTRAINT)], dtype=np.uint8)


_TAPS0 = _taps(G0)
_TAPS1 = _taps(G1)


def expected_output_len(n_input: int) -> int:
    """Coded bits produced for ``n_input`` information bits (rate 1/2)."""
    return 2 * n_input


def puncture(coded: np.ndarray | list[int], rate: str) -> BitArray:
    """Drop coded bits per the 802.11 pattern for ``rate``."""
    if rate not in PUNCTURE_PATTERNS:
        raise ValueError(f"unknown coding rate {rate!r}")
    arr = np.asarray(coded, dtype=np.uint8)
    pattern = np.array(PUNCTURE_PATTERNS[rate], dtype=bool)
    mask = np.resize(pattern, arr.size)
    return arr[mask]


def depuncture(punctured: np.ndarray | list[int], rate: str) -> BitArray:
    """Re-insert :data:`ERASURE` markers at the punctured positions."""
    if rate not in PUNCTURE_PATTERNS:
        raise ValueError(f"unknown coding rate {rate!r}")
    arr = np.asarray(punctured, dtype=np.uint8)
    pattern = np.array(PUNCTURE_PATTERNS[rate], dtype=bool)
    keep_per_period = int(pattern.sum())
    n_periods = int(np.ceil(arr.size / keep_per_period))
    mask = np.resize(pattern, n_periods * pattern.size)
    out = np.full(mask.size, ERASURE, dtype=np.uint8)
    out[mask] = np.resize(arr, int(mask.sum()))[: int(mask.sum())]
    # Trim to the exact number of original positions covered.
    kept = np.cumsum(mask)
    end = int(np.searchsorted(kept, arr.size)) + 1
    return out[:end]


def depuncture_soft(llrs: np.ndarray | list[float], rate: str) -> FloatArray:
    """Re-insert zero LLRs at the punctured positions (soft path)."""
    if rate not in PUNCTURE_PATTERNS:
        raise ValueError(f"unknown coding rate {rate!r}")
    arr = np.asarray(llrs, dtype=float)
    pattern = np.array(PUNCTURE_PATTERNS[rate], dtype=bool)
    keep_per_period = int(pattern.sum())
    n_periods = int(np.ceil(arr.size / keep_per_period))
    mask = np.resize(pattern, n_periods * pattern.size)
    out = np.zeros(mask.size, dtype=float)
    filled = np.zeros(int(mask.sum()), dtype=float)
    filled[: arr.size] = arr
    out[mask] = filled
    kept = np.cumsum(mask)
    end = int(np.searchsorted(kept, arr.size)) + 1
    return out[:end]


def encode(bits: np.ndarray | list[int]) -> BitArray:
    """Encode at rate 1/2; output interleaves (A, B) streams per input bit.

    The shift register starts at all-zero as the standard requires (the
    scrambled service field's leading zeros flush it in real frames).
    Each output is the GF(2) inner product of the generator taps with
    the current input window, i.e. a mod-2 convolution of the whole
    input with the taps -- which is how it is computed here.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError("bits must be 1-D")
    out = np.empty(2 * arr.size, dtype=np.uint8)
    if arr.size == 0:
        return out
    # Zero-state start means the convolution's leading transient IS the
    # encoder output; positions past arr.size - 1 belong to the (unsent)
    # flush tail and are dropped.
    out[0::2] = np.convolve(arr, _TAPS0)[: arr.size] & 1
    out[1::2] = np.convolve(arr, _TAPS1)[: arr.size] & 1
    return out
