"""Physical-layer substrates for the 2.4 GHz protocols multiscatter rides on.

Each protocol module provides a full complex-baseband modulator and a
software "commodity receiver" demodulator:

* :mod:`repro.phy.wifi_b`  -- 802.11b DSSS/CCK (1, 2, 5.5, 11 Mbps)
* :mod:`repro.phy.wifi_n`  -- 802.11n 20 MHz OFDM (mixed-mode preamble)
* :mod:`repro.phy.ble`     -- Bluetooth Low Energy LE 1M GFSK
* :mod:`repro.phy.zigbee`  -- IEEE 802.15.4 2.4 GHz OQPSK/DSSS

Shared helpers live in :mod:`repro.phy.bits` (CRCs, scramblers,
whitening), :mod:`repro.phy.pulse` (pulse shaping), and
:mod:`repro.phy.waveform` (the :class:`~repro.phy.waveform.Waveform`
container all modulators emit).
"""

from repro.phy.protocols import Protocol, PROTOCOL_INFO, ProtocolInfo
from repro.phy.waveform import Waveform

__all__ = ["Protocol", "PROTOCOL_INFO", "ProtocolInfo", "Waveform"]
