"""802.11 OFDM per-symbol BCC interleaver.

Two permutations per 802.11-2016 §17.3.5.7, specialized to one spatial
stream and no frequency rotation (the 20 MHz MCS0 case the paper uses).
``n_cbps`` is coded bits per symbol (48 at MCS0), ``n_bpsc`` bits per
subcarrier (1 for BPSK).
"""

from __future__ import annotations

import numpy as np

from repro.types import BitArray, IntArray

__all__ = ["interleave", "deinterleave", "permutation"]


def permutation(n_cbps: int, n_bpsc: int) -> IntArray:
    """Index map: output position of each input bit ``k``."""
    if n_cbps % 16:
        raise ValueError("n_cbps must be a multiple of 16")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + (k // 16)
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    return j


def interleave(bits: np.ndarray, n_cbps: int = 48, n_bpsc: int = 1) -> BitArray:
    """Interleave a stream symbol-by-symbol (length multiple of n_cbps)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % n_cbps:
        raise ValueError(f"stream length {arr.size} not a multiple of {n_cbps}")
    perm = permutation(n_cbps, n_bpsc)
    out = np.empty_like(arr)
    for start in range(0, arr.size, n_cbps):
        block = arr[start : start + n_cbps]
        seg = np.empty(n_cbps, dtype=np.uint8)
        seg[perm] = block
        out[start : start + n_cbps] = seg
    return out


def deinterleave(bits: np.ndarray, n_cbps: int = 48, n_bpsc: int = 1) -> BitArray:
    """Inverse of :func:`interleave`."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % n_cbps:
        raise ValueError(f"stream length {arr.size} not a multiple of {n_cbps}")
    perm = permutation(n_cbps, n_bpsc)
    out = np.empty_like(arr)
    for start in range(0, arr.size, n_cbps):
        block = arr[start : start + n_cbps]
        out[start : start + n_cbps] = block[perm]
    return out
