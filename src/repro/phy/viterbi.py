"""Viterbi decoder for the 802.11 rate-1/2 K=7 convolutional code.

Hard-decision decoding with full traceback; sized for the short frames
the reproduction exercises (64-state trellis, vectorized across states
per step).  Punctured positions (marked
:data:`repro.phy.convcode.ERASURE` by ``depuncture``) contribute zero
branch metric, which is how the rate-2/3 / 3/4 / 5/6 802.11n MCSs
decode.
"""

from __future__ import annotations

import numpy as np

from repro.phy.convcode import CONSTRAINT, ERASURE, G0, G1

__all__ = ["decode", "decode_soft"]

_N_STATES = 1 << (CONSTRAINT - 1)  # 64


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Per (state, input) next-state and output-pair tables."""
    next_state = np.empty((_N_STATES, 2), dtype=np.int64)
    outputs = np.empty((_N_STATES, 2, 2), dtype=np.uint8)
    for state in range(_N_STATES):
        for b in (0, 1):
            window = (b << 0) | (state << 1)
            a = bin(window & G0).count("1") & 1
            c = bin(window & G1).count("1") & 1
            next_state[state, b] = window & (_N_STATES - 1)
            outputs[state, b, 0] = a
            outputs[state, b, 1] = c
    return next_state, outputs


_NEXT, _OUT = _build_tables()

# Precompute, for each destination state, its two (prev_state, input)
# predecessors -- makes the ACS step a pure gather.
_PREV = np.full((_N_STATES, 2, 2), -1, dtype=np.int64)  # [dst, k] = (src, bit)
for _s in range(_N_STATES):
    for _b in (0, 1):
        _dst = _NEXT[_s, _b]
        slot = 0 if _PREV[_dst, 0, 0] == -1 else 1
        _PREV[_dst, slot, 0] = _s
        _PREV[_dst, slot, 1] = _b


def decode(coded: np.ndarray | list[int], *, n_info: int | None = None) -> np.ndarray:
    """Hard-decision Viterbi decode of a rate-1/2 coded stream.

    ``coded`` holds interleaved (A, B) bits; ``n_info`` truncates the
    decoded output (defaults to ``len(coded) // 2``).  The trellis is
    assumed to start in state zero, matching
    :func:`repro.phy.convcode.encode`; the end state is unconstrained.
    """
    arr = np.asarray(coded, dtype=np.uint8)
    if arr.size % 2:
        arr = np.concatenate([arr, np.array([ERASURE], dtype=np.uint8)])
    n_steps = arr.size // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)

    pairs = arr.reshape(n_steps, 2)

    metrics = np.full(_N_STATES, 1 << 30, dtype=np.int64)
    metrics[0] = 0
    # survivor[t, dst] = packed (prev_state << 1) | input_bit
    survivor = np.empty((n_steps, _N_STATES), dtype=np.int64)

    src0 = _PREV[:, 0, 0]
    bit0 = _PREV[:, 0, 1]
    src1 = _PREV[:, 1, 0]
    bit1 = _PREV[:, 1, 1]
    out0 = _OUT[src0, bit0]  # (64, 2) expected outputs via predecessor 0
    out1 = _OUT[src1, bit1]

    for t in range(n_steps):
        rx = pairs[t]
        w0 = 0 if rx[0] == ERASURE else 1
        w1 = 0 if rx[1] == ERASURE else 1
        branch0 = w0 * (out0[:, 0] != rx[0]).astype(np.int64) + w1 * (out0[:, 1] != rx[1])
        branch1 = w0 * (out1[:, 0] != rx[0]).astype(np.int64) + w1 * (out1[:, 1] != rx[1])
        cand0 = metrics[src0] + branch0
        cand1 = metrics[src1] + branch1
        take1 = cand1 < cand0
        metrics = np.where(take1, cand1, cand0)
        survivor[t] = np.where(
            take1, (src1 << 1) | bit1, (src0 << 1) | bit0
        )

    state = int(np.argmin(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        packed = survivor[t, state]
        decoded[t] = packed & 1
        state = int(packed >> 1)
    return decoded[:n_info]


def decode_soft(llrs: np.ndarray, *, n_info: int | None = None) -> np.ndarray:
    """Soft-decision Viterbi decode of a rate-1/2 LLR stream.

    ``llrs`` holds per-coded-bit log-likelihood ratios (positive =
    bit 1 more likely); punctured positions carry LLR 0, which costs
    nothing either way -- so soft depuncturing is just zero insertion.
    """
    arr = np.asarray(llrs, dtype=float)
    if arr.size % 2:
        arr = np.concatenate([arr, [0.0]])
    n_steps = arr.size // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)
    pairs = arr.reshape(n_steps, 2)

    metrics = np.full(_N_STATES, 1e18)
    metrics[0] = 0.0
    survivor = np.empty((n_steps, _N_STATES), dtype=np.int64)

    src0 = _PREV[:, 0, 0]
    bit0 = _PREV[:, 0, 1]
    src1 = _PREV[:, 1, 0]
    bit1 = _PREV[:, 1, 1]
    # Expected outputs in bipolar form (+1 for bit 1): branch cost is
    # -expected * llr summed over the pair (max-log ML).
    exp0 = 2.0 * _OUT[src0, bit0].astype(float) - 1.0
    exp1 = 2.0 * _OUT[src1, bit1].astype(float) - 1.0

    for t in range(n_steps):
        rx = pairs[t]
        branch0 = -(exp0[:, 0] * rx[0] + exp0[:, 1] * rx[1])
        branch1 = -(exp1[:, 0] * rx[0] + exp1[:, 1] * rx[1])
        cand0 = metrics[src0] + branch0
        cand1 = metrics[src1] + branch1
        take1 = cand1 < cand0
        metrics = np.where(take1, cand1, cand0)
        survivor[t] = np.where(take1, (src1 << 1) | bit1, (src0 << 1) | bit0)

    state = int(np.argmin(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        packed = survivor[t, state]
        decoded[t] = packed & 1
        state = int(packed >> 1)
    return decoded[:n_info]
