"""Viterbi decoder for the 802.11 rate-1/2 K=7 convolutional code.

Hard-decision decoding with full traceback; sized for the short frames
the reproduction exercises.  Punctured positions (marked
:data:`repro.phy.convcode.ERASURE` by ``depuncture``) contribute zero
branch metric, which is how the rate-2/3 / 3/4 / 5/6 802.11n MCSs
decode.

The add-compare-select recursion is processed in radix-16 blocks of
``_K = 4`` trellis steps: because K-1 = 6 > 4, a destination state
fixes the block's four input bits (its low nibble), and the 16
candidate paths into it differ only in the start state's high nibble.
Block branch sums come from tables indexed by the received pair type
(each coded pair is one of 9 (bit, bit/erasure) combinations), so the
Python-level loop runs once per 4 steps instead of once per step.  The
candidate ordering is chosen so that ``argmin`` ties resolve exactly
like the per-step recursion (predecessor slot 0 preferred, latest step
most significant), keeping decisions bit-identical to the scalar
reference implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import perf
from repro.core import contracts
from repro.core.backend import get_backend
from repro.phy.batch import require_batch
from repro.phy.convcode import CONSTRAINT, ERASURE, G0, G1
from repro.types import BitArray

__all__ = ["decode", "decode_soft", "decode_batch", "decode_soft_batch"]

_N_STATES = 1 << (CONSTRAINT - 1)  # 64
_K = 4  # trellis steps per vectorized block


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Per (state, input) next-state and output-pair tables."""
    next_state = np.empty((_N_STATES, 2), dtype=np.int64)
    outputs = np.empty((_N_STATES, 2, 2), dtype=np.uint8)
    for state in range(_N_STATES):
        for b in (0, 1):
            window = (b << 0) | (state << 1)
            a = bin(window & G0).count("1") & 1
            c = bin(window & G1).count("1") & 1
            next_state[state, b] = window & (_N_STATES - 1)
            outputs[state, b, 0] = a
            outputs[state, b, 1] = c
    return next_state, outputs


_NEXT, _OUT = _build_tables()

# Per destination state, its two (prev_state, input) predecessors --
# slot 0 is the smaller predecessor, which the serial recursion prefers
# on metric ties.
_PREV = np.full((_N_STATES, 2, 2), -1, dtype=np.int64)  # [dst, k] = (src, bit)
for _s in range(_N_STATES):
    for _b in (0, 1):
        _dst = _NEXT[_s, _b]
        slot = 0 if _PREV[_dst, 0, 0] == -1 else 1
        _PREV[_dst, slot, 0] = _s
        _PREV[_dst, slot, 1] = _b


def _build_block_tables() -> tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]
]:
    """Tables for the radix-16 blocked ACS.

    Writing the start state as ``s5..s0`` and the destination as
    ``d = (s1 s0 b1 b2 b3 b4)``, the path states are

    ====  =========================
    step  state entering the step
    ====  =========================
    1     ``s5 s4 s3 s2 s1 s0``
    2     ``s4 s3 s2 s1 s0 b1``
    3     ``s3 s2 s1 s0 b1 b2``
    4     ``s2 s1 s0 b1 b2 b3``
    ====  =========================

    so step j's branch only depends on the free bits ``s_{6-j}..s2``
    (and d).  The predecessor slot chosen at step j equals start bit
    ``s_{6-j}``; matching the serial tie rule (slot 0 wins, latest step
    decides first) therefore requires the candidate index to be
    ``c = (s2 s3 s4 s5)`` with s2 most significant, and first-``argmin``
    over c.

    Returns ``(bmtab, g12, g34, src, bits, idx_dc)``:

    * ``bmtab[pt, state*2+bit]`` -- single-step branch metric for
      received pair type ``pt = 3*a + b`` (a, b in {0, 1, erasure});
    * ``g12[p1*9+p2, d, c]`` / ``g34[p3*9+p4, d, c']`` -- combined
      branch sums for steps (1, 2) over all 16 candidates and steps
      (3, 4) over the 4 relevant bits ``(s2 s3)``;
    * ``src[d, c]`` -- block start state; ``bits[d]`` -- the 4 decoded
      bits fixed by d;
    * ``idx_dc`` -- per-step ``bmtab`` column indices in
      (dst, candidate) layout for the soft decoder.
    """
    d = np.arange(_N_STATES)
    s1s0 = d >> 4
    b = [(d >> (3 - j)) & 1 for j in range(_K)]

    idx_steps = []
    for j, nbits in zip(range(_K), (4, 3, 2, 1)):
        idx = np.empty((1 << nbits, _N_STATES), dtype=np.intp)
        for c in range(1 << nbits):
            sbits = [(c >> (nbits - 1 - i)) & 1 for i in range(nbits)]
            s = {2 + i: sbits[i] for i in range(nbits)}
            if j == 0:
                state = (s[5] << 5) | (s[4] << 4) | (s[3] << 3) | (s[2] << 2) | s1s0
            elif j == 1:
                state = (s[4] << 5) | (s[3] << 4) | (s[2] << 3) | (s1s0 << 1) | b[0]
            elif j == 2:
                state = (s[3] << 5) | (s[2] << 4) | (s1s0 << 2) | (b[0] << 1) | b[1]
            else:
                state = (s[2] << 5) | (s1s0 << 3) | (b[0] << 2) | (b[1] << 1) | b[2]
            idx[c] = state * 2 + b[j]
        idx_steps.append(idx)

    bmtab = np.empty((9, 2 * _N_STATES), dtype=np.int32)
    for pa in range(3):
        for pb in range(3):
            for st in range(_N_STATES):
                for bit in range(2):
                    m = 0
                    if pa != 2:
                        m += int(_OUT[st, bit, 0] != pa)
                    if pb != 2:
                        m += int(_OUT[st, bit, 1] != pb)
                    bmtab[3 * pa + pb, st * 2 + bit] = m

    g = [bmtab[:, idx] for idx in idx_steps]  # (9, n_free_j, 64)
    # Combine step pairs over the 81 pair-type combinations; duplicate
    # along the candidate axis where the later step has fewer free bits
    # (candidate c of step 1 maps to c >> 1 of step 2, etc.).
    g12 = g[0][:, None, :, :] + np.repeat(g[1], 2, axis=1)[None, :, :, :]
    g12 = g12.reshape(81, 16, _N_STATES).transpose(0, 2, 1).copy()
    g34 = g[2][:, None, :, :] + np.repeat(g[3], 2, axis=1)[None, :, :, :]
    g34 = g34.reshape(81, 4, _N_STATES).transpose(0, 2, 1).copy()

    src = np.empty((_N_STATES, 16), dtype=np.intp)
    for c in range(16):
        s2, s3, s4, s5 = (c >> 3) & 1, (c >> 2) & 1, (c >> 1) & 1, c & 1
        src[:, c] = (s5 << 5) | (s4 << 4) | (s3 << 3) | (s2 << 2) | s1s0
    bits = np.empty((_N_STATES, _K), dtype=np.uint8)
    for dst in range(_N_STATES):
        bits[dst] = [(dst >> 3) & 1, (dst >> 2) & 1, (dst >> 1) & 1, dst & 1]

    # Per-step float index tables in (dst, candidate) layout for the
    # soft decoder (it gathers per-step LLR branch metrics directly).
    idx_dc = [idx.T.copy() for idx in idx_steps]
    return bmtab, g12, g34, src, bits, idx_dc


_BMTAB, _G12, _G34, _SRC, _BITS, _IDX_DC = _build_block_tables()

_SRC0 = _PREV[:, 0, 0]
_BIT0 = _PREV[:, 0, 1]
_SRC1 = _PREV[:, 1, 0]
_BIT1 = _PREV[:, 1, 1]
_PACK0 = (_SRC0 << 1) | _BIT0
_PACK1 = (_SRC1 << 1) | _BIT1
_BM0 = _SRC0 * 2 + _BIT0  # bmtab columns via predecessor 0
_BM1 = _SRC1 * 2 + _BIT1


@contracts.shapes("64 ; nblk,64 ; rem,64")
def _traceback(
    metrics: np.ndarray,
    surv_blocks: np.ndarray,
    surv_tail: np.ndarray,
    n_steps: int,
    n_info: int,
) -> np.ndarray:
    n_blocks = surv_blocks.shape[0]
    rem = surv_tail.shape[0]
    state = int(np.argmin(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for i in range(rem - 1, -1, -1):
        packed = surv_tail[i, state]
        decoded[n_blocks * _K + i] = packed & 1
        state = int(packed >> 1)
    for nblk in range(n_blocks - 1, -1, -1):
        c = int(surv_blocks[nblk, state])
        decoded[nblk * _K : (nblk + 1) * _K] = _BITS[state]
        state = int(_SRC[state, c])
    return decoded[:n_info]


@contracts.shapes("n_coded ->")
def decode(coded: np.ndarray | list[int], *, n_info: int | None = None) -> BitArray:
    """Hard-decision Viterbi decode of a rate-1/2 coded stream.

    ``coded`` holds interleaved (A, B) values in {0, 1, ERASURE};
    ``n_info`` truncates the decoded output (defaults to
    ``len(coded) // 2``).  The trellis is assumed to start in state
    zero, matching :func:`repro.phy.convcode.encode`; the end state is
    unconstrained.
    """
    perf.dispatch("viterbi.decode", 1, batched=False)
    arr = np.asarray(coded, dtype=np.uint8)
    if arr.size % 2:
        arr = np.concatenate([arr, np.array([ERASURE], dtype=np.uint8)])
    n_steps = arr.size // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)

    pairs = arr.reshape(n_steps, 2).astype(np.intp)
    ptype = pairs[:, 0] * 3 + pairs[:, 1]

    n_blocks = n_steps // _K
    rem = n_steps - n_blocks * _K

    metrics = np.full(_N_STATES, 1 << 28, dtype=np.int32)
    metrics[0] = 0
    surv_blocks = np.empty((n_blocks, _N_STATES), dtype=np.intp)
    states = np.arange(_N_STATES)

    if n_blocks:
        pt = ptype[: n_blocks * _K].reshape(n_blocks, _K)
        block_bm = _G12[pt[:, 0] * 9 + pt[:, 1]] + np.repeat(
            _G34[pt[:, 2] * 9 + pt[:, 3]], 4, axis=2
        )
        for nblk in range(n_blocks):
            cand = metrics[_SRC] + block_bm[nblk]
            cidx = cand.argmin(axis=1)
            surv_blocks[nblk] = cidx
            metrics = cand[states, cidx]

    surv_tail = np.empty((rem, _N_STATES), dtype=np.int64)
    for i in range(rem):
        bm = _BMTAB[ptype[n_blocks * _K + i]]
        cand0 = metrics[_SRC0] + bm[_BM0]
        cand1 = metrics[_SRC1] + bm[_BM1]
        take1 = cand1 < cand0
        metrics = np.where(take1, cand1, cand0)
        surv_tail[i] = np.where(take1, _PACK1, _PACK0)

    return _traceback(metrics, surv_blocks, surv_tail, n_steps, n_info)


@contracts.shapes("n_llrs ->")
def decode_soft(llrs: np.ndarray, *, n_info: int | None = None) -> BitArray:
    """Soft-decision Viterbi decode of a rate-1/2 LLR stream.

    ``llrs`` holds per-coded-bit log-likelihood ratios (positive =
    bit 1 more likely); punctured positions carry LLR 0, which costs
    nothing either way -- so soft depuncturing is just zero insertion.

    Uses the same radix-16 blocked recursion as :func:`decode`; block
    branch sums group float additions differently from the step-by-step
    reference, so path metrics can differ by rounding epsilons (the
    decoded bits only change on exact metric ties, which continuous
    LLRs do not produce).
    """
    perf.dispatch("viterbi.decode_soft", 1, batched=False)
    arr = np.asarray(llrs, dtype=float)
    if arr.size % 2:
        arr = np.concatenate([arr, [0.0]])
    n_steps = arr.size // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)
    pairs = arr.reshape(n_steps, 2)

    # Per-step branch metrics for every (state, input): the expected
    # outputs in bipolar form scored against the LLR pair (max-log ML).
    exp_a = 2.0 * _OUT[:, :, 0].astype(float).reshape(-1) - 1.0  # (128,)
    exp_b = 2.0 * _OUT[:, :, 1].astype(float).reshape(-1) - 1.0
    bm_all = -(pairs[:, :1] * exp_a[None, :] + pairs[:, 1:] * exp_b[None, :])

    n_blocks = n_steps // _K
    rem = n_steps - n_blocks * _K

    metrics = np.full(_N_STATES, 1e18)
    metrics[0] = 0.0
    surv_blocks = np.empty((n_blocks, _N_STATES), dtype=np.intp)
    states = np.arange(_N_STATES)

    if n_blocks:
        steps = bm_all[: n_blocks * _K].reshape(n_blocks, _K, 2 * _N_STATES)
        a1 = steps[:, 0][:, _IDX_DC[0]]  # (n_blocks, 64, 16)
        a2 = steps[:, 1][:, _IDX_DC[1]]  # (n_blocks, 64, 8)
        a3 = steps[:, 2][:, _IDX_DC[2]]  # (n_blocks, 64, 4)
        a4 = steps[:, 3][:, _IDX_DC[3]]  # (n_blocks, 64, 2)
        nb = a1.shape[0]
        block_bm = (
            a1.reshape(nb, _N_STATES, 8, 2)
            + (
                a2.reshape(nb, _N_STATES, 4, 2, 1)
                + (
                    a3.reshape(nb, _N_STATES, 2, 2, 1)
                    + a4.reshape(nb, _N_STATES, 2, 1, 1)
                ).reshape(nb, _N_STATES, 4, 1, 1)
            ).reshape(nb, _N_STATES, 8, 1)
        ).reshape(nb, _N_STATES, 16)
        for nblk in range(n_blocks):
            cand = metrics[_SRC] + block_bm[nblk]
            cidx = cand.argmin(axis=1)
            surv_blocks[nblk] = cidx
            metrics = cand[states, cidx]

    surv_tail = np.empty((rem, _N_STATES), dtype=np.int64)
    for i in range(rem):
        bm = bm_all[n_blocks * _K + i]
        cand0 = metrics[_SRC0] + bm[_BM0]
        cand1 = metrics[_SRC1] + bm[_BM1]
        take1 = cand1 < cand0
        metrics = np.where(take1, cand1, cand0)
        surv_tail[i] = np.where(take1, _PACK1, _PACK0)

    return _traceback(metrics, surv_blocks, surv_tail, n_steps, n_info)


# ----------------------------------------------------------------------
# batched entry points
# ----------------------------------------------------------------------
def _stack_batch(
    batch: Sequence[np.ndarray | list[int]] | np.ndarray,
    dtype: np.dtype,
    where: str,
) -> np.ndarray:
    """Stack equal-length streams into a ``(B, L)`` array.

    Batched decoding requires one shared stream length; ragged batches
    must be grouped by length upstream (see :mod:`repro.phy.batch`).
    """
    arrs = [np.asarray(item, dtype=dtype) for item in batch]
    require_batch(arrs, where)
    lengths = {a.size for a in arrs}
    if len(lengths) != 1:
        raise ValueError(
            f"{where}: streams have mixed lengths {sorted(lengths)}; "
            "group ragged batches by length before dispatching"
        )
    return np.stack(arrs)


@contracts.shapes("b,64 ; b,nblk,64 ; b,nblk ; b,nblk ; b,rem,64")
def _traceback_batch_hard(
    metrics: np.ndarray,
    mprev: np.ndarray,
    i12: np.ndarray,
    i34: np.ndarray,
    surv_tail: np.ndarray,
    n_steps: int,
    n_info: int,
) -> list[BitArray]:
    """Lazy batch traceback for the hard path.

    The forward pass stores only each block's entry metrics; the 16
    candidates of the one state actually visited per packet are
    recomputed here from the same int32 tables, so ``argmin`` sees the
    exact row the forward pass would have stored and the survivor
    choice (first-minimum tie rule included) is bit-identical.
    """
    n_batch = metrics.shape[0]
    n_blocks = mprev.shape[1]
    rem = surv_tail.shape[1]
    rows = np.arange(n_batch)
    state = metrics.argmin(axis=1)
    decoded = np.empty((n_batch, n_steps), dtype=np.uint8)
    for i in range(rem - 1, -1, -1):
        packed = surv_tail[rows, i, state]
        decoded[:, n_blocks * _K + i] = packed & 1
        state = packed >> 1
    for nblk in range(n_blocks - 1, -1, -1):
        g12 = _G12[i12[:, nblk], state]  # (B, 16)
        g34 = _G34[i34[:, nblk], state]  # (B, 4)
        bm = (g12.reshape(n_batch, 4, 4) + g34[:, :, None]).reshape(n_batch, 16)
        cand = mprev[rows[:, None], nblk, _SRC[state]] + bm
        c = cand.argmin(axis=1)
        decoded[:, nblk * _K : (nblk + 1) * _K] = _BITS[state]
        state = _SRC[state, c]
    return [decoded[b, :n_info].copy() for b in range(n_batch)]


@contracts.shapes("b,64 ; b,nblk,64 ; b,rem,64")
def _traceback_batch(
    metrics: np.ndarray,
    surv_blocks: np.ndarray,
    surv_tail: np.ndarray,
    n_steps: int,
    n_info: int,
) -> list[BitArray]:
    """Batch traceback: all packets walk their trellises in lockstep."""
    n_batch = metrics.shape[0]
    n_blocks = surv_blocks.shape[1]
    rem = surv_tail.shape[1]
    rows = np.arange(n_batch)
    state = metrics.argmin(axis=1)
    decoded = np.empty((n_batch, n_steps), dtype=np.uint8)
    for i in range(rem - 1, -1, -1):
        packed = surv_tail[rows, i, state]
        decoded[:, n_blocks * _K + i] = packed & 1
        state = packed >> 1
    for nblk in range(n_blocks - 1, -1, -1):
        c = surv_blocks[rows, nblk, state]
        decoded[:, nblk * _K : (nblk + 1) * _K] = _BITS[state]
        state = _SRC[state, c]
    return [decoded[b, :n_info].copy() for b in range(n_batch)]


@contracts.shapes("[n_coded] ->")
def decode_batch(
    coded_batch: Sequence[np.ndarray | list[int]] | np.ndarray,
    *,
    n_info: int | None = None,
) -> list[BitArray]:
    """Hard-decision decode of N equal-length coded streams at once.

    Semantically identical to ``[decode(c, n_info=n_info) for c in
    coded_batch]`` -- the ACS recursion advances all N trellises per
    block step, and because every quantity is integer the batched path
    is *bit-identical* to the scalar loop (``argmin`` keeps the same
    first-occurrence tie rule along the candidate axis).
    """
    xp = get_backend().xp
    arr = _stack_batch(coded_batch, np.dtype(np.uint8), "viterbi.decode_batch")
    n_batch = arr.shape[0]
    perf.dispatch("viterbi.decode", n_batch, batched=True)
    if arr.shape[1] % 2:
        pad = xp.full((n_batch, 1), ERASURE, dtype=np.uint8)
        arr = xp.concatenate([arr, pad], axis=1)
    n_steps = arr.shape[1] // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return [np.zeros(0, dtype=np.uint8) for _ in range(n_batch)]

    pairs = arr.reshape(n_batch, n_steps, 2).astype(np.intp)
    ptype = pairs[:, :, 0] * 3 + pairs[:, :, 1]

    n_blocks = n_steps // _K
    rem = n_steps - n_blocks * _K

    metrics = xp.full((n_batch, _N_STATES), 1 << 28, dtype=np.int32)
    metrics[:, 0] = 0
    # Entry metrics per block, for the lazy traceback; no survivor
    # indices are stored, so the forward ACS is add + min only.
    mprev = np.empty((n_batch, n_blocks, _N_STATES), dtype=np.int32)
    i12 = np.zeros((n_batch, n_blocks), dtype=np.intp)
    i34 = np.zeros((n_batch, n_blocks), dtype=np.intp)

    if n_blocks:
        pt = ptype[:, : n_blocks * _K].reshape(n_batch, n_blocks, _K)
        i12 = pt[:, :, 0] * 9 + pt[:, :, 1]
        i34 = pt[:, :, 2] * 9 + pt[:, :, 3]
        for nblk in range(n_blocks):
            # Same int32 table sums as the scalar path, one batch row
            # per packet.  ``repeat(g34, 4)[..., j] == g34[..., j // 4]``,
            # so the broadcast add over a (64, 4, 4) view reproduces the
            # scalar ``repeat`` sums without materializing the repeat;
            # per-block (B, 64, 16) working sets stay cache-resident,
            # which beats precomputing all blocks upfront.  min(axis)
            # returns the same value take-at-argmin would, and the
            # survivor index is recovered lazily during traceback.
            g12 = _G12[i12[:, nblk]]  # (B, 64, 16)
            g34 = _G34[i34[:, nblk]]  # (B, 64, 4)
            mprev[:, nblk] = metrics
            # Incremental minimum over the 16 candidates: all-integer
            # adds and mins are exact in any evaluation order, and the
            # (B, 64) working set per candidate stays cache-resident
            # where a materialized (B, 64, 16) candidate tensor does
            # not.
            new = metrics[:, _SRC[:, 0]] + g12[:, :, 0] + g34[:, :, 0]
            for j in range(1, 16):
                xp.minimum(
                    new,
                    metrics[:, _SRC[:, j]] + g12[:, :, j] + g34[:, :, j >> 2],
                    out=new,
                )
            metrics = new

    surv_tail = np.empty((n_batch, rem, _N_STATES), dtype=np.int64)
    for i in range(rem):
        bm = _BMTAB[ptype[:, n_blocks * _K + i]]
        cand0 = metrics[:, _SRC0] + bm[:, _BM0]
        cand1 = metrics[:, _SRC1] + bm[:, _BM1]
        take1 = cand1 < cand0
        metrics = xp.where(take1, cand1, cand0)
        surv_tail[:, i] = xp.where(take1, _PACK1, _PACK0)

    return _traceback_batch_hard(
        metrics, mprev, i12, i34, surv_tail, n_steps, n_info
    )


@contracts.shapes("[n_llrs] ->")
def decode_soft_batch(
    llrs_batch: Sequence[np.ndarray] | np.ndarray,
    *,
    n_info: int | None = None,
) -> list[BitArray]:
    """Soft-decision decode of N equal-length LLR streams at once.

    Bit-identical to ``[decode_soft(x, n_info=n_info) for x in
    llrs_batch]``: the float branch-sum tree nests additions exactly
    like the scalar blocked recursion (only a leading batch axis is
    added), so even the path-metric epsilons match.
    """
    xp = get_backend().xp
    arr = _stack_batch(
        llrs_batch, np.dtype(np.float64), "viterbi.decode_soft_batch"
    )
    n_batch = arr.shape[0]
    perf.dispatch("viterbi.decode_soft", n_batch, batched=True)
    if arr.shape[1] % 2:
        arr = xp.concatenate([arr, xp.zeros((n_batch, 1))], axis=1)
    n_steps = arr.shape[1] // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return [np.zeros(0, dtype=np.uint8) for _ in range(n_batch)]
    pairs = arr.reshape(n_batch, n_steps, 2)

    exp_a = 2.0 * _OUT[:, :, 0].astype(float).reshape(-1) - 1.0
    exp_b = 2.0 * _OUT[:, :, 1].astype(float).reshape(-1) - 1.0
    bm_all = -(
        pairs[:, :, :1] * exp_a[None, None, :]
        + pairs[:, :, 1:] * exp_b[None, None, :]
    )

    n_blocks = n_steps // _K
    rem = n_steps - n_blocks * _K

    metrics = xp.full((n_batch, _N_STATES), 1e18)
    metrics[:, 0] = 0.0
    surv_blocks = np.empty((n_batch, n_blocks, _N_STATES), dtype=np.intp)
    rows = np.arange(n_batch)[:, None]
    states = np.arange(_N_STATES)[None, :]

    for nblk in range(n_blocks):
        steps = bm_all[:, nblk * _K : (nblk + 1) * _K]
        # The float branch-sum tree nests additions exactly like the
        # scalar blocked recursion (elementwise, so the added batch
        # axis cannot change any rounding).
        a1 = steps[:, 0][:, _IDX_DC[0]]  # (B, 64, 16)
        a2 = steps[:, 1][:, _IDX_DC[1]]  # (B, 64, 8)
        a3 = steps[:, 2][:, _IDX_DC[2]]  # (B, 64, 4)
        a4 = steps[:, 3][:, _IDX_DC[3]]  # (B, 64, 2)
        nb = n_batch
        block_bm = (
            a1.reshape(nb, _N_STATES, 8, 2)
            + (
                a2.reshape(nb, _N_STATES, 4, 2, 1)
                + (
                    a3.reshape(nb, _N_STATES, 2, 2, 1)
                    + a4.reshape(nb, _N_STATES, 2, 1, 1)
                ).reshape(nb, _N_STATES, 4, 1, 1)
            ).reshape(nb, _N_STATES, 8, 1)
        ).reshape(nb, _N_STATES, 16)
        cand = metrics[:, _SRC] + block_bm
        cidx = cand.argmin(axis=2)
        surv_blocks[:, nblk] = cidx
        metrics = cand[rows, states, cidx]

    surv_tail = np.empty((n_batch, rem, _N_STATES), dtype=np.int64)
    for i in range(rem):
        bm = bm_all[:, n_blocks * _K + i]
        cand0 = metrics[:, _SRC0] + bm[:, _BM0]
        cand1 = metrics[:, _SRC1] + bm[:, _BM1]
        take1 = cand1 < cand0
        metrics = xp.where(take1, cand1, cand0)
        surv_tail[:, i] = xp.where(take1, _PACK1, _PACK0)

    return _traceback_batch(metrics, surv_blocks, surv_tail, n_steps, n_info)
