"""802.11b DSSS/CCK physical layer (complex baseband).

Implements the long-preamble PLCP format of 802.11b-1999 at the rates
the paper uses: 1 Mbps (DBPSK/Barker), 2 Mbps (DQPSK/Barker) and
5.5 Mbps (CCK), plus a coherent software receiver.

Structure on air (long preamble):

* SYNC: 128 scrambled ones            (128 us @ 1 Mbps DBPSK)
* SFD:  0xF3A0, LSB first             (16 us)
* PLCP header: SIGNAL, SERVICE, LENGTH, CRC-16 (48 us @ 1 Mbps)
* PSDU at the negotiated rate

Everything before the PSDU always runs at 1 Mbps DBPSK with Barker
spreading, which is what gives the protocol its distinctive 144 us
packet-detection field (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy import bits as bitlib
from repro.phy import pulse
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform

__all__ = [
    "BARKER11",
    "WifiBConfig",
    "modulate",
    "demodulate",
    "build_psdu_symbols",
    "demap_psdu_symbols",
    "WifiBDecodeResult",
]

#: Barker-11 spreading sequence (+1/-1 chips), per 802.11-2016 §16.4.6.4.
BARKER11 = np.array([1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1], dtype=float)

#: SFD for the long preamble, transmitted LSB first (0xF3A0 -> 16 bits).
_SFD_LONG = bitlib.bits_from_int(0xF3A0, 16)

#: SFD for the short preamble: the long SFD time-reversed (0x05CF).
_SFD_SHORT = bitlib.bits_from_int(0x05CF, 16)

#: SIGNAL field values (rate in 100 kbps units).
_SIGNAL_BY_RATE = {1.0: 0x0A, 2.0: 0x14, 5.5: 0x37, 11.0: 0x6E}
_RATE_BY_SIGNAL = {v: k for k, v in _SIGNAL_BY_RATE.items()}

#: DQPSK phase increments for dibits (d0, d1) per 802.11 Table 16-2.
_DQPSK_PHASE = {(0, 0): 0.0, (0, 1): np.pi / 2, (1, 1): np.pi, (1, 0): 3 * np.pi / 2}

#: CCK 5.5 Mbps phi2 choices indexed by bit d2 (phi2 = pi/2 + d2*pi).
_CCK55_PHI2 = (np.pi / 2, 3 * np.pi / 2)

#: CCK 11 Mbps QPSK mapping for the (phi2, phi3, phi4) dibit pairs.
_CCK11_QPSK = {(0, 0): 0.0, (0, 1): np.pi / 2, (1, 0): np.pi, (1, 1): 3 * np.pi / 2}


@dataclass(frozen=True)
class WifiBConfig:
    """Modulator configuration.

    ``rate_mbps`` selects the PSDU rate (1, 2 or 5.5); the preamble and
    header always run at 1 Mbps.  ``samples_per_chip`` sets the
    oversampling of the 11 Mchip/s stream, so the sample rate is
    ``11e6 * samples_per_chip``.  ``shaped`` applies RRC chip shaping
    (needed for realistic envelopes at the tag's rectifier).
    """

    rate_mbps: float = 1.0
    samples_per_chip: int = 2
    shaped: bool = True
    scrambler_seed: int | None = None
    short_preamble: bool = False

    @property
    def sample_rate(self) -> float:
        return 11e6 * self.samples_per_chip

    @property
    def seed(self) -> int:
        """Scrambler seed: 0x6C for long-, 0x1B for short-preamble
        frames unless overridden (802.11-2016 §16.2.4/§16.2.5)."""
        if self.scrambler_seed is not None:
            return self.scrambler_seed
        return 0x1B if self.short_preamble else 0x6C

    def __post_init__(self) -> None:
        if self.rate_mbps not in (1.0, 2.0, 5.5, 11.0):
            raise ValueError(f"unsupported 802.11b rate {self.rate_mbps}")
        if self.samples_per_chip < 1:
            raise ValueError("samples_per_chip must be >= 1")
        if self.short_preamble and self.rate_mbps == 1.0:
            raise ValueError("the short preamble excludes the 1 Mbps PSDU rate")


# ----------------------------------------------------------------------
# symbol-level mapping (shared by modulator and the overlay layer)
# ----------------------------------------------------------------------
def _dbpsk_phases(bits: np.ndarray, phase0: float = 0.0) -> np.ndarray:
    """Differentially encode bits into absolute symbol phases."""
    increments = np.where(np.asarray(bits, dtype=np.uint8) == 1, np.pi, 0.0)
    return phase0 + np.cumsum(increments)


def _dqpsk_phases(bits: np.ndarray, phase0: float = 0.0) -> np.ndarray:
    """Differentially encode dibits into absolute symbol phases."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 2:
        raise ValueError("DQPSK needs an even number of bits")
    increments = np.array(
        [_DQPSK_PHASE[(int(arr[i]), int(arr[i + 1]))] for i in range(0, arr.size, 2)]
    )
    return phase0 + np.cumsum(increments)


def _barker_chips(phases: np.ndarray) -> np.ndarray:
    """Spread one complex symbol per phase with Barker-11."""
    symbols = np.exp(1j * phases)
    return (symbols[:, None] * BARKER11[None, :]).ravel()


def _cck55_chips(bits: np.ndarray, phase0: float) -> tuple[np.ndarray, float]:
    """CCK 5.5 Mbps: 4 bits/symbol onto 8 complex chips.

    Returns the chip array and the final cumulative phi1 so successive
    calls stay differentially coherent.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 4:
        raise ValueError("CCK 5.5 needs a multiple of 4 bits")
    chips = []
    phi1 = phase0
    for i in range(0, arr.size, 4):
        d = arr[i : i + 4]
        # (d0, d1) differentially encode phi1; even/odd symbol parity
        # offset (pi on odd symbols) is omitted -- it cancels in our
        # differential receiver and does not affect the envelope.
        phi1 += _DQPSK_PHASE[(int(d[0]), int(d[1]))]
        phi2 = _CCK55_PHI2[int(d[2])]
        phi3 = 0.0
        phi4 = int(d[3]) * np.pi
        chips.append(_cck_codeword(phi1, phi2, phi3, phi4))
    return np.concatenate(chips), phi1


def _cck11_chips(bits: np.ndarray, phase0: float) -> tuple[np.ndarray, float]:
    """CCK 11 Mbps: 8 bits/symbol onto 8 complex chips."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 8:
        raise ValueError("CCK 11 needs a multiple of 8 bits")
    chips = []
    phi1 = phase0
    for i in range(0, arr.size, 8):
        d = arr[i : i + 8]
        phi1 += _DQPSK_PHASE[(int(d[0]), int(d[1]))]
        phi2 = _CCK11_QPSK[(int(d[2]), int(d[3]))] + np.pi / 2
        phi3 = _CCK11_QPSK[(int(d[4]), int(d[5]))]
        phi4 = _CCK11_QPSK[(int(d[6]), int(d[7]))]
        chips.append(_cck_codeword(phi1, phi2, phi3, phi4))
    return np.concatenate(chips), phi1


def _cck_codeword(phi1: float, phi2: float, phi3: float, phi4: float) -> np.ndarray:
    """The 8-chip CCK codeword per 802.11-2016 equation 16-1."""
    e = np.exp
    return np.array(
        [
            e(1j * (phi1 + phi2 + phi3 + phi4)),
            e(1j * (phi1 + phi3 + phi4)),
            e(1j * (phi1 + phi2 + phi4)),
            -e(1j * (phi1 + phi4)),
            e(1j * (phi1 + phi2 + phi3)),
            e(1j * (phi1 + phi3)),
            -e(1j * (phi1 + phi2)),
            e(1j * phi1),
        ]
    )


def _plcp_header_bits(rate_mbps: float, length_bytes: int) -> np.ndarray:
    """SIGNAL + SERVICE + LENGTH + CRC16 (48 bits, pre-scrambling)."""
    signal = bitlib.bits_from_int(_SIGNAL_BY_RATE[rate_mbps], 8)
    service = bitlib.bits_from_int(0x00, 8)
    duration_us = int(np.ceil(length_bytes * 8 / rate_mbps))
    length = bitlib.bits_from_int(duration_us, 16)
    head = np.concatenate([signal, service, length])
    crc = bitlib.crc16_80211b_plcp(head)
    return np.concatenate([head, crc])


def build_psdu_symbols(payload_bits: np.ndarray, rate_mbps: float) -> int:
    """Number of DSSS symbols the PSDU occupies at ``rate_mbps``."""
    n = np.asarray(payload_bits).size
    if rate_mbps == 1.0:
        return n
    if rate_mbps == 2.0:
        return (n + 1) // 2
    return (n + 3) // 4  # CCK 5.5


# ----------------------------------------------------------------------
# modulator
# ----------------------------------------------------------------------
def modulate(
    payload: bytes | np.ndarray,
    config: WifiBConfig | None = None,
    *,
    scrambled_domain: bool = False,
) -> Waveform:
    """Modulate a PSDU into an 802.11b complex-baseband waveform.

    ``payload`` may be bytes or a bit array.  With
    ``scrambled_domain=True`` the given bits are placed on air directly
    (post-scrambler domain) -- this is what overlay-modulation carrier
    crafting uses, because the tag operates on on-air symbols (see
    :mod:`repro.core.overlay`); the pre-scrambler payload that a
    commodity sender would be handed is recoverable via
    :func:`repro.phy.bits.descramble_80211b`.
    """
    cfg = config or WifiBConfig()
    if isinstance(payload, (bytes, bytearray)):
        payload_bits = bitlib.bits_from_bytes(payload)
    else:
        payload_bits = np.asarray(payload, dtype=np.uint8)

    if cfg.short_preamble:
        sync = np.zeros(56, dtype=np.uint8)
        sfd = _SFD_SHORT
    else:
        sync = np.ones(128, dtype=np.uint8)
        sfd = _SFD_LONG
    header = _plcp_header_bits(cfg.rate_mbps, (payload_bits.size + 7) // 8)
    pre_scramble = np.concatenate([sync, sfd, header])

    if scrambled_domain:
        # Keep the preamble+header scrambled normally; splice payload
        # bits into the on-air stream untouched.
        scrambled_head = bitlib.scramble_80211b(pre_scramble, seed=cfg.seed)
        onair_bits = np.concatenate([scrambled_head, payload_bits])
    else:
        onair_bits = bitlib.scramble_80211b(
            np.concatenate([pre_scramble, payload_bits]), seed=cfg.seed
        )

    n_head = pre_scramble.size  # bits before the PSDU
    head_bits = onair_bits[:n_head]
    psdu_bits = onair_bits[n_head:]

    if cfg.short_preamble:
        # Short format: SYNC+SFD at 1 Mbps DBPSK, header at 2 Mbps DQPSK.
        n_sync = sync.size + sfd.size
        sync_phases = _dbpsk_phases(head_bits[:n_sync])
        hdr_phases = _dqpsk_phases(head_bits[n_sync:], phase0=sync_phases[-1])
        head_phases = np.concatenate([sync_phases, hdr_phases])
    else:
        head_phases = _dbpsk_phases(head_bits)
    head_chips = _barker_chips(head_phases)
    last_phase = head_phases[-1] if head_phases.size else 0.0

    if cfg.rate_mbps == 1.0:
        psdu_phases = _dbpsk_phases(psdu_bits, phase0=last_phase)
        psdu_chips = _barker_chips(psdu_phases)
        chips_per_symbol = 11
    elif cfg.rate_mbps == 2.0:
        if psdu_bits.size % 2:
            psdu_bits = np.concatenate([psdu_bits, np.zeros(1, np.uint8)])
        psdu_phases = _dqpsk_phases(psdu_bits, phase0=last_phase)
        psdu_chips = _barker_chips(psdu_phases)
        chips_per_symbol = 11
    elif cfg.rate_mbps == 5.5:
        pad = (-psdu_bits.size) % 4
        if pad:
            psdu_bits = np.concatenate([psdu_bits, np.zeros(pad, np.uint8)])
        psdu_chips, _ = _cck55_chips(psdu_bits, phase0=last_phase)
        chips_per_symbol = 8
    else:  # CCK 11
        pad = (-psdu_bits.size) % 8
        if pad:
            psdu_bits = np.concatenate([psdu_bits, np.zeros(pad, np.uint8)])
        psdu_chips, _ = _cck11_chips(psdu_bits, phase0=last_phase)
        chips_per_symbol = 8

    chips = np.concatenate([head_chips, psdu_chips])
    taps = pulse.rrc_taps(0.5, cfg.samples_per_chip) if cfg.shaped else None
    iq = pulse.shape_chips(chips, cfg.samples_per_chip, taps)

    payload_start = head_chips.size * cfg.samples_per_chip
    return Waveform(
        iq=iq,
        sample_rate=cfg.sample_rate,
        annotations={
            "protocol": Protocol.WIFI_B,
            "rate_mbps": cfg.rate_mbps,
            "payload_start": payload_start,
            "samples_per_symbol": chips_per_symbol * cfg.samples_per_chip,
            "n_payload_symbols": psdu_chips.size // chips_per_symbol,
            "payload_bits": psdu_bits.copy(),
            "scrambler_seed": cfg.seed,
            "short_preamble": cfg.short_preamble,
            "n_head_bits": n_head,
            "scrambled_domain": scrambled_domain,
        },
    )


# ----------------------------------------------------------------------
# receiver
# ----------------------------------------------------------------------
@dataclass
class WifiBDecodeResult:
    """Receiver output: descrambled PSDU bits plus on-air symbol info."""

    payload_bits: np.ndarray
    onair_bits: np.ndarray
    header_ok: bool
    rate_mbps: float


def _despread_barker(iq: np.ndarray, sps: int, n_symbols: int, start: int) -> np.ndarray:
    """Correlate each 11-chip window with Barker; complex symbol values."""
    chip_kernel = np.repeat(BARKER11, sps) / (11 * sps)
    sym_len = 11 * sps
    out = np.empty(n_symbols, complex)
    for k in range(n_symbols):
        seg = iq[start + k * sym_len : start + (k + 1) * sym_len]
        if seg.size < sym_len:
            seg = np.pad(seg, (0, sym_len - seg.size))
        out[k] = np.dot(seg, chip_kernel)
    return out


def _diff_bits(symbols: np.ndarray, prev: complex) -> np.ndarray:
    """DBPSK differential decision against the previous symbol."""
    ref = np.concatenate([[prev], symbols[:-1]])
    return (np.real(symbols * np.conj(ref)) < 0).astype(np.uint8)


def _diff_dibits(symbols: np.ndarray, prev: complex) -> np.ndarray:
    """DQPSK differential decision; returns interleaved (d0, d1) bits."""
    ref = np.concatenate([[prev], symbols[:-1]])
    rot = symbols * np.conj(ref)
    phase = np.mod(np.angle(rot) + np.pi / 4, 2 * np.pi)
    quadrant = (phase // (np.pi / 2)).astype(int)  # 0,1,2,3 -> 0,90,180,270
    inv = {0: (0, 0), 1: (0, 1), 2: (1, 1), 3: (1, 0)}
    bits = np.empty(symbols.size * 2, dtype=np.uint8)
    for i, q in enumerate(quadrant):
        bits[2 * i], bits[2 * i + 1] = inv[int(q)]
    return bits


def _cck11_decode(iq: np.ndarray, sps: int, n_symbols: int, start: int, prev: complex) -> np.ndarray:
    """Differential-coherent CCK 11 Mbps demodulation (64-way search)."""
    sym_len = 8 * sps
    dibits = list(_CCK11_QPSK.items())
    bits = np.empty(n_symbols * 8, dtype=np.uint8)
    prev_sym = prev
    for k in range(n_symbols):
        seg = iq[start + k * sym_len : start + (k + 1) * sym_len]
        if seg.size < sym_len:
            seg = np.pad(seg, (0, sym_len - seg.size))
        chips = seg.reshape(8, sps).mean(axis=1)
        best = None
        for (d23, p2) in dibits:
            for (d45, p3) in dibits:
                for (d67, p4) in dibits:
                    cw = _cck_codeword(0.0, p2 + np.pi / 2, p3, p4)
                    corr = np.vdot(cw, chips)
                    if best is None or abs(corr) > abs(best[0]):
                        best = (corr, d23, d45, d67)
        corr, d23, d45, d67 = best
        rot = corr * np.conj(prev_sym) if abs(prev_sym) else corr
        phase = np.mod(np.angle(rot) + np.pi / 4, 2 * np.pi)
        quadrant = int(phase // (np.pi / 2))
        inv = {0: (0, 0), 1: (0, 1), 2: (1, 1), 3: (1, 0)}
        d0, d1 = inv[quadrant]
        bits[8 * k : 8 * k + 8] = (d0, d1, *d23, *d45, *d67)
        prev_sym = corr
    return bits


def _cck55_decode(iq: np.ndarray, sps: int, n_symbols: int, start: int, prev: complex) -> np.ndarray:
    """Differential-coherent CCK 5.5 demodulation."""
    sym_len = 8 * sps
    bits = np.empty(n_symbols * 4, dtype=np.uint8)
    prev_sym = prev
    for k in range(n_symbols):
        seg = iq[start + k * sym_len : start + (k + 1) * sym_len]
        if seg.size < sym_len:
            seg = np.pad(seg, (0, sym_len - seg.size))
        # Average to chip decisions.
        chips = seg.reshape(8, sps).mean(axis=1)
        best = None
        for d2 in (0, 1):
            for d3 in (0, 1):
                cw = _cck_codeword(0.0, _CCK55_PHI2[d2], 0.0, d3 * np.pi)
                corr = np.vdot(cw, chips)  # conj(cw) . chips
                if best is None or abs(corr) > abs(best[0]):
                    best = (corr, d2, d3)
        corr, d2, d3 = best
        # phi1 recovered from the correlation phase, differentially.
        rot = corr * np.conj(prev_sym) if abs(prev_sym) else corr
        phase = np.mod(np.angle(rot) + np.pi / 4, 2 * np.pi)
        quadrant = int(phase // (np.pi / 2))
        inv = {0: (0, 0), 1: (0, 1), 2: (1, 1), 3: (1, 0)}
        d0, d1 = inv[quadrant]
        bits[4 * k : 4 * k + 4] = (d0, d1, d2, d3)
        prev_sym = corr
    return bits


def demodulate(
    wave: Waveform,
    *,
    n_payload_bits: int | None = None,
) -> WifiBDecodeResult:
    """Commodity-receiver demodulation of an 802.11b waveform.

    Uses the annotated frame timing (``payload_start``), as a hardware
    receiver would after preamble synchronization, then performs real
    despreading, differential decisions, and descrambling.  ``CRC``
    checking is intentionally absent: the paper disables NIC CRC so raw
    payload bits are delivered (§3 "the CRC functions of NICs are
    turned off").
    """
    ann = wave.annotations
    if ann.get("protocol") is not Protocol.WIFI_B:
        raise ValueError("waveform is not annotated as 802.11b")
    sps = ann["samples_per_symbol"] // (11 if ann["rate_mbps"] in (1.0, 2.0) else 8)
    rate = ann["rate_mbps"]
    payload_start = ann["payload_start"]
    short = ann.get("short_preamble", False)
    n_head_symbols = payload_start // (11 * sps)

    head_syms = _despread_barker(wave.iq, sps, n_head_symbols, 0)
    if short:
        # SYNC(56) + SFD(16) at DBPSK, then 24 DQPSK header symbols.
        n_sync = 72
        sync_bits = _diff_bits(head_syms[1:n_sync], head_syms[0])
        first_bit = np.uint8(np.real(head_syms[0]) < 0)
        hdr_bits = _diff_dibits(head_syms[n_sync:], head_syms[n_sync - 1])
        head_onair = np.concatenate([[first_bit], sync_bits, hdr_bits])
        sync_len = n_sync
    else:
        head_onair = _diff_bits(head_syms[1:], head_syms[0])
        first_bit = np.uint8(np.real(head_syms[0]) < 0)
        head_onair = np.concatenate([[first_bit], head_onair])
        sync_len = 144

    n_sym = ann["n_payload_symbols"]
    prev = head_syms[-1] if head_syms.size else 1.0 + 0j
    if rate == 1.0:
        syms = _despread_barker(wave.iq, sps, n_sym, payload_start)
        psdu_onair = _diff_bits(syms, prev)
    elif rate == 2.0:
        syms = _despread_barker(wave.iq, sps, n_sym, payload_start)
        psdu_onair = _diff_dibits(syms, prev)
    elif rate == 5.5:
        psdu_onair = _cck55_decode(wave.iq, sps, n_sym, payload_start, prev)
    else:
        psdu_onair = _cck11_decode(wave.iq, sps, n_sym, payload_start, prev)

    onair = np.concatenate([head_onair, psdu_onair])
    descrambled = bitlib.descramble_80211b(
        onair, seed=ann.get("scrambler_seed", 0x6C)
    )

    n_head_bits = head_onair.size
    header_bits = descrambled[sync_len:n_head_bits]
    header_ok = bool(
        header_bits.size == 48
        and np.array_equal(
            bitlib.crc16_80211b_plcp(header_bits[:32]), header_bits[32:48]
        )
    )
    signal = bitlib.int_from_bits(header_bits[:8]) if header_bits.size == 48 else 0
    decoded_rate = _RATE_BY_SIGNAL.get(signal, rate)

    payload_bits = descrambled[n_head_bits:]
    if n_payload_bits is not None:
        payload_bits = payload_bits[:n_payload_bits]
    return WifiBDecodeResult(
        payload_bits=payload_bits,
        onair_bits=psdu_onair,
        header_ok=header_ok,
        rate_mbps=decoded_rate,
    )


def demap_psdu_symbols(result: WifiBDecodeResult) -> np.ndarray:
    """On-air (scrambled-domain) PSDU bits, one per DSSS symbol at 1 Mbps.

    The overlay decoder works in this domain (paper §2.4: tag flips act
    on on-air symbols; re-scrambling the received PSDU in host software
    recovers them exactly, since scramble(descramble(x)) == x).
    """
    return result.onair_bits
