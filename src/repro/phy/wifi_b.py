"""802.11b DSSS/CCK physical layer (complex baseband).

Implements the long-preamble PLCP format of 802.11b-1999 at the rates
the paper uses: 1 Mbps (DBPSK/Barker), 2 Mbps (DQPSK/Barker) and
5.5 Mbps (CCK), plus a coherent software receiver.

Structure on air (long preamble):

* SYNC: 128 scrambled ones            (128 us @ 1 Mbps DBPSK)
* SFD:  0xF3A0, LSB first             (16 us)
* PLCP header: SIGNAL, SERVICE, LENGTH, CRC-16 (48 us @ 1 Mbps)
* PSDU at the negotiated rate

Everything before the PSDU always runs at 1 Mbps DBPSK with Barker
spreading, which is what gives the protocol its distinctive 144 us
packet-detection field (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from types import ModuleType
from typing import Sequence

import numpy as np

from repro import perf
from repro.core import contracts
from repro.core.backend import get_backend
from repro.phy import bits as bitlib
from repro.phy import pulse
from repro.phy.batch import run_grouped
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.types import Hertz

__all__ = [
    "BARKER11",
    "WifiBConfig",
    "modulate",
    "demodulate",
    "modulate_batch",
    "demodulate_batch",
    "build_psdu_symbols",
    "demap_psdu_symbols",
    "WifiBDecodeResult",
]

#: Barker-11 spreading sequence (+1/-1 chips), per 802.11-2016 §16.4.6.4.
BARKER11 = np.array([1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1], dtype=float)

#: SFD for the long preamble, transmitted LSB first (0xF3A0 -> 16 bits).
_SFD_LONG = bitlib.bits_from_int(0xF3A0, 16)

#: SFD for the short preamble: the long SFD time-reversed (0x05CF).
_SFD_SHORT = bitlib.bits_from_int(0x05CF, 16)

#: SIGNAL field values (rate in 100 kbps units).
_SIGNAL_BY_RATE = {1.0: 0x0A, 2.0: 0x14, 5.5: 0x37, 11.0: 0x6E}
_RATE_BY_SIGNAL = {v: k for k, v in _SIGNAL_BY_RATE.items()}

#: DQPSK phase increments for dibits (d0, d1) per 802.11 Table 16-2.
_DQPSK_PHASE = {(0, 0): 0.0, (0, 1): np.pi / 2, (1, 1): np.pi, (1, 0): 3 * np.pi / 2}

#: The same table as an array indexed by ``2*d0 + d1``.
_DQPSK_PHASE_LUT = np.array([0.0, np.pi / 2, 3 * np.pi / 2, np.pi])

#: Quadrant index (0/90/180/270 degrees) back to the (d0, d1) dibit.
_DQPSK_INV_LUT = np.array([[0, 0], [0, 1], [1, 1], [1, 0]], dtype=np.uint8)

#: CCK 5.5 Mbps phi2 choices indexed by bit d2 (phi2 = pi/2 + d2*pi).
_CCK55_PHI2 = (np.pi / 2, 3 * np.pi / 2)

#: CCK 11 Mbps QPSK mapping for the (phi2, phi3, phi4) dibit pairs.
_CCK11_QPSK = {(0, 0): 0.0, (0, 1): np.pi / 2, (1, 0): np.pi, (1, 1): 3 * np.pi / 2}

#: The same mapping as an array indexed by ``2*a + b``.
_CCK11_QPSK_LUT = np.array([0.0, np.pi / 2, np.pi, 3 * np.pi / 2])

#: Per-chip (phi2, phi3, phi4) participation and sign in the CCK
#: codeword (802.11-2016 equation 16-1); phi1 is on every chip.
_CCK_PHI_COEF = np.array(
    [
        [1, 1, 1],
        [0, 1, 1],
        [1, 0, 1],
        [0, 0, 1],
        [1, 1, 0],
        [0, 1, 0],
        [1, 0, 0],
        [0, 0, 0],
    ],
    dtype=float,
)
_CCK_CHIP_SIGN = np.array([1, 1, 1, -1, 1, 1, -1, 1], dtype=float)


def _rate_tenths(rate_mbps: float) -> int:
    """802.11b rate as integer tenths of Mbps for exact discrimination."""
    return int(round(rate_mbps * 10.0))


@dataclass(frozen=True)
class WifiBConfig:
    """Modulator configuration.

    ``rate_mbps`` selects the PSDU rate (1, 2 or 5.5); the preamble and
    header always run at 1 Mbps.  ``samples_per_chip`` sets the
    oversampling of the 11 Mchip/s stream, so the sample rate is
    ``11e6 * samples_per_chip``.  ``shaped`` applies RRC chip shaping
    (needed for realistic envelopes at the tag's rectifier).
    """

    rate_mbps: float = 1.0
    samples_per_chip: int = 2
    shaped: bool = True
    scrambler_seed: int | None = None
    short_preamble: bool = False

    @property
    def sample_rate(self) -> Hertz:
        return 11e6 * self.samples_per_chip

    @property
    def rate_tenths(self) -> int:
        """PSDU rate in integer tenths of Mbps (10/20/55/110).

        Rate discrimination compares these integers: exact float
        equality on ``rate_mbps`` is banned by reprolint R002.
        """
        return _rate_tenths(self.rate_mbps)

    @property
    def seed(self) -> int:
        """Scrambler seed: 0x6C for long-, 0x1B for short-preamble
        frames unless overridden (802.11-2016 §16.2.4/§16.2.5)."""
        if self.scrambler_seed is not None:
            return self.scrambler_seed
        return 0x1B if self.short_preamble else 0x6C

    def __post_init__(self) -> None:
        if self.rate_mbps not in (1.0, 2.0, 5.5, 11.0):
            raise ValueError(f"unsupported 802.11b rate {self.rate_mbps}")
        if self.samples_per_chip < 1:
            raise ValueError("samples_per_chip must be >= 1")
        if self.short_preamble and self.rate_tenths == 10:
            raise ValueError("the short preamble excludes the 1 Mbps PSDU rate")


# ----------------------------------------------------------------------
# symbol-level mapping (shared by modulator and the overlay layer)
# ----------------------------------------------------------------------
def _dbpsk_phases(bits: np.ndarray, phase0: float = 0.0) -> np.ndarray:
    """Differentially encode bits into absolute symbol phases."""
    increments = np.where(np.asarray(bits, dtype=np.uint8) == 1, np.pi, 0.0)
    return phase0 + np.cumsum(increments)


def _dqpsk_phases(bits: np.ndarray, phase0: float = 0.0) -> np.ndarray:
    """Differentially encode dibits into absolute symbol phases."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 2:
        raise ValueError("DQPSK needs an even number of bits")
    pairs = arr.reshape(-1, 2)
    increments = _DQPSK_PHASE_LUT[2 * pairs[:, 0] + pairs[:, 1]]
    return phase0 + np.cumsum(increments)


@contracts.shapes("n -> n*11")
def _barker_chips(phases: np.ndarray) -> np.ndarray:
    """Spread one complex symbol per phase with Barker-11."""
    symbols = np.exp(1j * phases)
    return (symbols[:, None] * BARKER11[None, :]).ravel()


def _cck55_chips(bits: np.ndarray, phase0: float) -> tuple[np.ndarray, float]:
    """CCK 5.5 Mbps: 4 bits/symbol onto 8 complex chips.

    Returns the chip array and the final cumulative phi1 so successive
    calls stay differentially coherent.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 4:
        raise ValueError("CCK 5.5 needs a multiple of 4 bits")
    d = arr.reshape(-1, 4)
    # (d0, d1) differentially encode phi1; even/odd symbol parity
    # offset (pi on odd symbols) is omitted -- it cancels in our
    # differential receiver and does not affect the envelope.
    phi1 = phase0 + np.cumsum(_DQPSK_PHASE_LUT[2 * d[:, 0] + d[:, 1]])
    phi2 = np.pi / 2 + d[:, 2] * np.pi
    phi3 = np.zeros(d.shape[0])
    phi4 = d[:, 3] * np.pi
    chips = _cck_codewords(phi1, phi2, phi3, phi4).ravel()
    return chips, float(phi1[-1]) if phi1.size else phase0


def _cck11_chips(bits: np.ndarray, phase0: float) -> tuple[np.ndarray, float]:
    """CCK 11 Mbps: 8 bits/symbol onto 8 complex chips."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 8:
        raise ValueError("CCK 11 needs a multiple of 8 bits")
    d = arr.reshape(-1, 8)
    phi1 = phase0 + np.cumsum(_DQPSK_PHASE_LUT[2 * d[:, 0] + d[:, 1]])
    phi2 = _CCK11_QPSK_LUT[2 * d[:, 2] + d[:, 3]] + np.pi / 2
    phi3 = _CCK11_QPSK_LUT[2 * d[:, 4] + d[:, 5]]
    phi4 = _CCK11_QPSK_LUT[2 * d[:, 6] + d[:, 7]]
    chips = _cck_codewords(phi1, phi2, phi3, phi4).ravel()
    return chips, float(phi1[-1]) if phi1.size else phase0


@contracts.shapes("n ; n ; n ; n -> n,8")
def _cck_codewords(
    phi1: np.ndarray, phi2: np.ndarray, phi3: np.ndarray, phi4: np.ndarray
) -> np.ndarray:
    """8-chip CCK codewords for per-symbol phase arrays; shape (n, 8)."""
    phases = phi1[:, None] + np.stack([phi2, phi3, phi4], axis=1) @ _CCK_PHI_COEF.T
    return _CCK_CHIP_SIGN * np.exp(1j * phases)


def _cck_codeword(phi1: float, phi2: float, phi3: float, phi4: float) -> np.ndarray:
    """The 8-chip CCK codeword per 802.11-2016 equation 16-1."""
    return _cck_codewords(
        np.array([phi1]), np.array([phi2]), np.array([phi3]), np.array([phi4])
    )[0]


def _plcp_header_bits(rate_mbps: float, length_bytes: int) -> np.ndarray:
    """SIGNAL + SERVICE + LENGTH + CRC16 (48 bits, pre-scrambling)."""
    signal = bitlib.bits_from_int(_SIGNAL_BY_RATE[rate_mbps], 8)
    service = bitlib.bits_from_int(0x00, 8)
    duration_us = int(np.ceil(length_bytes * 8 / rate_mbps))
    length = bitlib.bits_from_int(duration_us, 16)
    head = np.concatenate([signal, service, length])
    crc = bitlib.crc16_80211b_plcp(head)
    return np.concatenate([head, crc])


def build_psdu_symbols(payload_bits: np.ndarray, rate_mbps: float) -> int:
    """Number of DSSS symbols the PSDU occupies at ``rate_mbps``."""
    n = np.asarray(payload_bits).size
    tenths = _rate_tenths(rate_mbps)
    if tenths == 10:
        return n
    if tenths == 20:
        return (n + 1) // 2
    return (n + 3) // 4  # CCK 5.5


# ----------------------------------------------------------------------
# modulator
# ----------------------------------------------------------------------
@lru_cache(maxsize=256)
def _cached_head(
    rate_mbps: float, n_psdu_bytes: int, seed: int, short_preamble: bool
) -> tuple[np.ndarray, float, int, int]:
    """Spread chips for the scrambled SYNC+SFD+PLCP header.

    Everything before the PSDU is fully determined by (rate, PSDU byte
    count, scrambler seed, preamble format), so traffic generators that
    vary only the payload reuse the ~144 us detection field instead of
    re-spreading it per packet.  Returns ``(head_chips, last_phase,
    scrambler_state_after_head, n_head_bits)``; the chips array is
    shared -- callers must not mutate it.
    """
    if short_preamble:
        sync = np.zeros(56, dtype=np.uint8)
        sfd = _SFD_SHORT
    else:
        sync = np.ones(128, dtype=np.uint8)
        sfd = _SFD_LONG
    header = _plcp_header_bits(rate_mbps, n_psdu_bytes)
    pre_scramble = np.concatenate([sync, sfd, header])
    head_bits = bitlib.scramble_80211b(pre_scramble, seed=seed)

    if short_preamble:
        # Short format: SYNC+SFD at 1 Mbps DBPSK, header at 2 Mbps DQPSK.
        n_sync = sync.size + sfd.size
        sync_phases = _dbpsk_phases(head_bits[:n_sync])
        hdr_phases = _dqpsk_phases(head_bits[n_sync:], phase0=sync_phases[-1])
        head_phases = np.concatenate([sync_phases, hdr_phases])
    else:
        head_phases = _dbpsk_phases(head_bits)
    head_chips = _barker_chips(head_phases)
    last_phase = float(head_phases[-1]) if head_phases.size else 0.0

    # The self-synchronizing scrambler register is the last 7 output
    # bits, most recent in bit 0 -- what the PSDU scramble resumes from.
    state_after = 0
    for k in range(7):
        state_after |= int(head_bits[-1 - k]) << k
    return head_chips, last_phase, state_after, pre_scramble.size


@contracts.dtypes(np.uint8)
def modulate(
    payload: bytes | np.ndarray,
    config: WifiBConfig | None = None,
    *,
    scrambled_domain: bool = False,
) -> Waveform:
    """Modulate a PSDU into an 802.11b complex-baseband waveform.

    ``payload`` may be bytes or a bit array.  With
    ``scrambled_domain=True`` the given bits are placed on air directly
    (post-scrambler domain) -- this is what overlay-modulation carrier
    crafting uses, because the tag operates on on-air symbols (see
    :mod:`repro.core.overlay`); the pre-scrambler payload that a
    commodity sender would be handed is recoverable via
    :func:`repro.phy.bits.descramble_80211b`.
    """
    perf.dispatch("wifi_b.modulate", 1, batched=False)
    cfg = config or WifiBConfig()
    if isinstance(payload, (bytes, bytearray)):
        payload_bits = bitlib.bits_from_bytes(payload)
    else:
        payload_bits = np.asarray(payload, dtype=np.uint8)

    head_chips, last_phase, scr_state, n_head = _cached_head(
        cfg.rate_mbps, (payload_bits.size + 7) // 8, cfg.seed, cfg.short_preamble
    )

    if scrambled_domain:
        # The preamble+header stay scrambled normally; payload bits go
        # on air untouched.
        psdu_bits = payload_bits
    else:
        # Resume the self-synchronizing scrambler where the head's
        # register left off -- identical to scrambling the whole frame
        # in one pass.
        psdu_bits = bitlib.scramble_80211b(payload_bits, seed=scr_state)

    if cfg.rate_tenths == 10:
        psdu_phases = _dbpsk_phases(psdu_bits, phase0=last_phase)
        psdu_chips = _barker_chips(psdu_phases)
        chips_per_symbol = 11
    elif cfg.rate_tenths == 20:
        if psdu_bits.size % 2:
            psdu_bits = np.concatenate([psdu_bits, np.zeros(1, np.uint8)])
        psdu_phases = _dqpsk_phases(psdu_bits, phase0=last_phase)
        psdu_chips = _barker_chips(psdu_phases)
        chips_per_symbol = 11
    elif cfg.rate_tenths == 55:
        pad = (-psdu_bits.size) % 4
        if pad:
            psdu_bits = np.concatenate([psdu_bits, np.zeros(pad, np.uint8)])
        psdu_chips, _ = _cck55_chips(psdu_bits, phase0=last_phase)
        chips_per_symbol = 8
    else:  # CCK 11
        pad = (-psdu_bits.size) % 8
        if pad:
            psdu_bits = np.concatenate([psdu_bits, np.zeros(pad, np.uint8)])
        psdu_chips, _ = _cck11_chips(psdu_bits, phase0=last_phase)
        chips_per_symbol = 8

    chips = np.concatenate([head_chips, psdu_chips])
    taps = pulse.rrc_taps(0.5, cfg.samples_per_chip) if cfg.shaped else None
    iq = pulse.shape_chips(chips, cfg.samples_per_chip, taps)

    payload_start = head_chips.size * cfg.samples_per_chip
    return Waveform(
        iq=iq,
        sample_rate=cfg.sample_rate,
        annotations={
            "protocol": Protocol.WIFI_B,
            "rate_mbps": cfg.rate_mbps,
            "payload_start": payload_start,
            "samples_per_symbol": chips_per_symbol * cfg.samples_per_chip,
            "n_payload_symbols": psdu_chips.size // chips_per_symbol,
            "payload_bits": psdu_bits.copy(),
            "scrambler_seed": cfg.seed,
            "short_preamble": cfg.short_preamble,
            "n_head_bits": n_head,
            "scrambled_domain": scrambled_domain,
        },
    )


# ----------------------------------------------------------------------
# receiver
# ----------------------------------------------------------------------
@dataclass
class WifiBDecodeResult:
    """Receiver output: descrambled PSDU bits plus on-air symbol info."""

    payload_bits: np.ndarray
    onair_bits: np.ndarray
    header_ok: bool
    rate_mbps: float


@contracts.shapes("_ -> _,_")
def _symbol_matrix(iq: np.ndarray, sym_len: int, n_symbols: int, start: int) -> np.ndarray:
    """Consecutive symbol-length segments as rows, zero-padded at the end."""
    end = start + n_symbols * sym_len
    seg = iq[start:end]
    if seg.size < n_symbols * sym_len:
        seg = np.pad(seg, (0, n_symbols * sym_len - seg.size))
    return seg.reshape(n_symbols, sym_len)


@contracts.shapes("_ -> _")
def _despread_barker(iq: np.ndarray, sps: int, n_symbols: int, start: int) -> np.ndarray:
    """Correlate each 11-chip window with Barker; complex symbol values."""
    chip_kernel = np.repeat(BARKER11, sps) / (11 * sps)
    return _symbol_matrix(iq, 11 * sps, n_symbols, start) @ chip_kernel


@contracts.shapes("n -> n")
def _diff_bits(symbols: np.ndarray, prev: complex) -> np.ndarray:
    """DBPSK differential decision against the previous symbol."""
    ref = np.concatenate([[prev], symbols[:-1]])
    return (np.real(symbols * np.conj(ref)) < 0).astype(np.uint8)


@contracts.shapes("n -> n*2")
def _diff_dibits(symbols: np.ndarray, prev: complex) -> np.ndarray:
    """DQPSK differential decision; returns interleaved (d0, d1) bits."""
    ref = np.concatenate([[prev], symbols[:-1]])
    rot = symbols * np.conj(ref)
    phase = np.mod(np.angle(rot) + np.pi / 4, 2 * np.pi)
    quadrant = (phase // (np.pi / 2)).astype(int)  # 0,1,2,3 -> 0,90,180,270
    return _DQPSK_INV_LUT[quadrant].ravel()


def _build_cck_banks() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Candidate codeword banks (phi1 = 0) for the CCK searches.

    Bank rows are in the same nesting order the scalar search used, so
    first-``argmax`` reproduces its strictly-greater tie rule.  The
    paired bit tables give the data bits each row encodes.
    """
    cw55 = np.empty((4, 8), dtype=complex)
    bits55 = np.empty((4, 2), dtype=np.uint8)
    for d2 in (0, 1):
        for d3 in (0, 1):
            i = 2 * d2 + d3
            cw55[i] = _cck_codeword(0.0, _CCK55_PHI2[d2], 0.0, d3 * np.pi)
            bits55[i] = (d2, d3)

    dibits = list(_CCK11_QPSK.items())
    cw11 = np.empty((64, 8), dtype=complex)
    bits11 = np.empty((64, 6), dtype=np.uint8)
    i = 0
    for (d23, p2) in dibits:
        for (d45, p3) in dibits:
            for (d67, p4) in dibits:
                cw11[i] = _cck_codeword(0.0, p2 + np.pi / 2, p3, p4)
                bits11[i] = (*d23, *d45, *d67)
                i += 1
    return cw55, bits55, cw11, bits11


_CCK55_BANK, _CCK55_BITS, _CCK11_BANK, _CCK11_BITS = _build_cck_banks()


def _cck_decode(
    iq: np.ndarray,
    sps: int,
    n_symbols: int,
    start: int,
    prev: complex,
    bank: np.ndarray,
    bank_bits: np.ndarray,
) -> np.ndarray:
    """Differential-coherent CCK demodulation against a codeword bank.

    Correlates every symbol with every candidate codeword in one
    matmul, picks the best per symbol, then recovers the (d0, d1)
    dibit from the symbol-to-symbol phase of the winning correlations.
    """
    if n_symbols == 0:
        return np.zeros(0, dtype=np.uint8)
    chips = _symbol_matrix(iq, 8 * sps, n_symbols, start).reshape(n_symbols, 8, sps).mean(axis=2)
    corr = chips @ bank.conj().T  # (n_symbols, n_codewords)
    best = np.argmax(np.abs(corr), axis=1)
    corr_best = corr[np.arange(n_symbols), best]

    # phi1 recovered from the correlation phase, differentially.
    ref = np.concatenate([[prev], corr_best[:-1]])
    # Exact-zero guard (integer compare, R002): only a correlation that
    # is exactly zero has no usable phase reference.
    rot = corr_best * np.where(np.abs(ref) == 0, 1.0 + 0j, np.conj(ref))
    phase = np.mod(np.angle(rot) + np.pi / 4, 2 * np.pi)
    quadrant = (phase // (np.pi / 2)).astype(int)
    return np.hstack([_DQPSK_INV_LUT[quadrant], bank_bits[best]]).ravel()


def _cck11_decode(iq: np.ndarray, sps: int, n_symbols: int, start: int, prev: complex) -> np.ndarray:
    """Differential-coherent CCK 11 Mbps demodulation (64-way search)."""
    return _cck_decode(iq, sps, n_symbols, start, prev, _CCK11_BANK, _CCK11_BITS)


def _cck55_decode(iq: np.ndarray, sps: int, n_symbols: int, start: int, prev: complex) -> np.ndarray:
    """Differential-coherent CCK 5.5 demodulation."""
    return _cck_decode(iq, sps, n_symbols, start, prev, _CCK55_BANK, _CCK55_BITS)


def demodulate(
    wave: Waveform,
    *,
    n_payload_bits: int | None = None,
) -> WifiBDecodeResult:
    """Commodity-receiver demodulation of an 802.11b waveform.

    Uses the annotated frame timing (``payload_start``), as a hardware
    receiver would after preamble synchronization, then performs real
    despreading, differential decisions, and descrambling.  ``CRC``
    checking is intentionally absent: the paper disables NIC CRC so raw
    payload bits are delivered (§3 "the CRC functions of NICs are
    turned off").
    """
    perf.dispatch("wifi_b.demodulate", 1, batched=False)
    ann = wave.annotations
    if ann.get("protocol") is not Protocol.WIFI_B:
        raise ValueError("waveform is not annotated as 802.11b")
    sps = ann["samples_per_symbol"] // (11 if ann["rate_mbps"] in (1.0, 2.0) else 8)
    rate = ann["rate_mbps"]
    payload_start = ann["payload_start"]
    short = ann.get("short_preamble", False)
    n_head_symbols = payload_start // (11 * sps)

    head_syms = _despread_barker(wave.iq, sps, n_head_symbols, 0)
    if short:
        # SYNC(56) + SFD(16) at DBPSK, then 24 DQPSK header symbols.
        n_sync = 72
        sync_bits = _diff_bits(head_syms[1:n_sync], head_syms[0])
        first_bit = np.uint8(np.real(head_syms[0]) < 0)
        hdr_bits = _diff_dibits(head_syms[n_sync:], head_syms[n_sync - 1])
        head_onair = np.concatenate([[first_bit], sync_bits, hdr_bits])
        sync_len = n_sync
    else:
        head_onair = _diff_bits(head_syms[1:], head_syms[0])
        first_bit = np.uint8(np.real(head_syms[0]) < 0)
        head_onair = np.concatenate([[first_bit], head_onair])
        sync_len = 144

    n_sym = ann["n_payload_symbols"]
    prev = head_syms[-1] if head_syms.size else 1.0 + 0j
    tenths = _rate_tenths(rate)
    if tenths == 10:
        syms = _despread_barker(wave.iq, sps, n_sym, payload_start)
        psdu_onair = _diff_bits(syms, prev)
    elif tenths == 20:
        syms = _despread_barker(wave.iq, sps, n_sym, payload_start)
        psdu_onair = _diff_dibits(syms, prev)
    elif tenths == 55:
        psdu_onair = _cck55_decode(wave.iq, sps, n_sym, payload_start, prev)
    else:
        psdu_onair = _cck11_decode(wave.iq, sps, n_sym, payload_start, prev)

    onair = np.concatenate([head_onair, psdu_onair])
    descrambled = bitlib.descramble_80211b(
        onair, seed=ann.get("scrambler_seed", 0x6C)
    )

    n_head_bits = head_onair.size
    header_bits = descrambled[sync_len:n_head_bits]
    header_ok = bool(
        header_bits.size == 48
        and np.array_equal(
            bitlib.crc16_80211b_plcp(header_bits[:32]), header_bits[32:48]
        )
    )
    signal = bitlib.int_from_bits(header_bits[:8]) if header_bits.size == 48 else 0
    decoded_rate = _RATE_BY_SIGNAL.get(signal, rate)

    payload_bits = descrambled[n_head_bits:]
    if n_payload_bits is not None:
        payload_bits = payload_bits[:n_payload_bits]
    return WifiBDecodeResult(
        payload_bits=payload_bits,
        onair_bits=psdu_onair,
        header_ok=header_ok,
        rate_mbps=decoded_rate,
    )


# ----------------------------------------------------------------------
# batched entry points
# ----------------------------------------------------------------------
@contracts.dtypes(np.uint8)
def modulate_batch(
    payloads: Sequence[bytes | np.ndarray],
    config: WifiBConfig | None = None,
    *,
    scrambled_domain: bool = False,
) -> list[Waveform]:
    """Modulate N PSDUs with one vectorized dispatch per payload length.

    Bit-identical to ``[modulate(p, config, ...) for p in payloads]``:
    the stateful per-frame pieces (scrambler, chip-shaping convolution)
    keep their scalar calls, while differential phase accumulation,
    spreading and the CCK codeword synthesis run over the stacked
    batch.
    """
    cfg = config or WifiBConfig()
    all_bits = [
        bitlib.bits_from_bytes(p)
        if isinstance(p, (bytes, bytearray))
        else np.asarray(p, dtype=np.uint8)
        for p in payloads
    ]
    return run_grouped(
        all_bits,
        lambda b: b.size,
        lambda group: _modulate_group(
            group, cfg, scrambled_domain=scrambled_domain
        ),
        where="wifi_b.modulate_batch",
    )


def _modulate_group(
    bits_group: list[np.ndarray], cfg: WifiBConfig, *, scrambled_domain: bool
) -> list[Waveform]:
    xp = get_backend().xp
    n_batch = len(bits_group)
    perf.dispatch("wifi_b.modulate", n_batch, batched=True)
    head_chips, last_phase, scr_state, n_head = _cached_head(
        cfg.rate_mbps,
        (bits_group[0].size + 7) // 8,
        cfg.seed,
        cfg.short_preamble,
    )
    if scrambled_domain:
        psdu_rows = list(bits_group)
    else:
        psdu_rows = [
            bitlib.scramble_80211b(b, seed=scr_state) for b in bits_group
        ]

    tenths = cfg.rate_tenths
    if tenths == 10:
        psdu_bits = np.stack(psdu_rows)
        phases = last_phase + xp.cumsum(
            xp.where(psdu_bits == 1, np.pi, 0.0), axis=1
        )
        psdu_chips = _barker_chips_batch(phases, xp)
        chips_per_symbol = 11
    elif tenths == 20:
        if psdu_rows[0].size % 2:
            psdu_rows = [
                np.concatenate([b, np.zeros(1, np.uint8)]) for b in psdu_rows
            ]
        psdu_bits = np.stack(psdu_rows)
        pairs = psdu_bits.reshape(n_batch, -1, 2)
        increments = _DQPSK_PHASE_LUT[2 * pairs[:, :, 0] + pairs[:, :, 1]]
        phases = last_phase + xp.cumsum(increments, axis=1)
        psdu_chips = _barker_chips_batch(phases, xp)
        chips_per_symbol = 11
    elif tenths == 55:
        pad = (-psdu_rows[0].size) % 4
        if pad:
            psdu_rows = [
                np.concatenate([b, np.zeros(pad, np.uint8)])
                for b in psdu_rows
            ]
        psdu_bits = np.stack(psdu_rows)
        d = psdu_bits.reshape(n_batch, -1, 4)
        phi1 = last_phase + xp.cumsum(
            _DQPSK_PHASE_LUT[2 * d[:, :, 0] + d[:, :, 1]], axis=1
        )
        phi2 = np.pi / 2 + d[:, :, 2] * np.pi
        phi3 = xp.zeros(d.shape[:2])
        phi4 = d[:, :, 3] * np.pi
        psdu_chips = _cck_codewords_batch(phi1, phi2, phi3, phi4, xp).reshape(
            n_batch, -1
        )
        chips_per_symbol = 8
    else:  # CCK 11
        pad = (-psdu_rows[0].size) % 8
        if pad:
            psdu_rows = [
                np.concatenate([b, np.zeros(pad, np.uint8)])
                for b in psdu_rows
            ]
        psdu_bits = np.stack(psdu_rows)
        d = psdu_bits.reshape(n_batch, -1, 8)
        phi1 = last_phase + xp.cumsum(
            _DQPSK_PHASE_LUT[2 * d[:, :, 0] + d[:, :, 1]], axis=1
        )
        phi2 = _CCK11_QPSK_LUT[2 * d[:, :, 2] + d[:, :, 3]] + np.pi / 2
        phi3 = _CCK11_QPSK_LUT[2 * d[:, :, 4] + d[:, :, 5]]
        phi4 = _CCK11_QPSK_LUT[2 * d[:, :, 6] + d[:, :, 7]]
        psdu_chips = _cck_codewords_batch(phi1, phi2, phi3, phi4, xp).reshape(
            n_batch, -1
        )
        chips_per_symbol = 8

    taps = pulse.rrc_taps(0.5, cfg.samples_per_chip) if cfg.shaped else None
    payload_start = head_chips.size * cfg.samples_per_chip
    n_payload_symbols = psdu_chips.shape[1] // chips_per_symbol
    waves = []
    for b in range(n_batch):
        # pulse.shape_chips keeps its scalar convolution: np.convolve
        # per frame is the identical call (and result) the scalar
        # modulator makes.
        chips = np.concatenate([head_chips, psdu_chips[b]])
        iq = pulse.shape_chips(chips, cfg.samples_per_chip, taps)
        waves.append(
            Waveform(
                iq=iq,
                sample_rate=cfg.sample_rate,
                annotations={
                    "protocol": Protocol.WIFI_B,
                    "rate_mbps": cfg.rate_mbps,
                    "payload_start": payload_start,
                    "samples_per_symbol": chips_per_symbol
                    * cfg.samples_per_chip,
                    "n_payload_symbols": n_payload_symbols,
                    "payload_bits": psdu_bits[b].copy(),
                    "scrambler_seed": cfg.seed,
                    "short_preamble": cfg.short_preamble,
                    "n_head_bits": n_head,
                    "scrambled_domain": scrambled_domain,
                },
            )
        )
    return waves


@contracts.shapes("b,n -> b,n*11")
def _barker_chips_batch(phases: np.ndarray, xp: ModuleType) -> np.ndarray:
    """Batched :func:`_barker_chips`: ``(B, n_sym)`` -> ``(B, n_chips)``."""
    symbols = xp.exp(1j * phases)
    return (symbols[:, :, None] * BARKER11[None, None, :]).reshape(
        phases.shape[0], -1
    )


@contracts.shapes("b,n ; b,n ; b,n ; b,n -> b,n,8")
def _cck_codewords_batch(
    phi1: np.ndarray,
    phi2: np.ndarray,
    phi3: np.ndarray,
    phi4: np.ndarray,
    xp: ModuleType,
) -> np.ndarray:
    """Batched :func:`_cck_codewords`: ``(B, n_sym)`` -> ``(B, n_sym, 8)``."""
    phases = phi1[:, :, None] + xp.stack(
        [phi2, phi3, phi4], axis=2
    ) @ _CCK_PHI_COEF.T
    return _CCK_CHIP_SIGN * xp.exp(1j * phases)


def demodulate_batch(
    waves: Sequence[Waveform],
    *,
    n_payload_bits: int | None = None,
) -> list[WifiBDecodeResult]:
    """Batched :func:`demodulate`: bit-identical to the scalar loop.

    Despreading is a row-stacked Barker gemv and the CCK bank search a
    per-frame gemm of the same shape the scalar path issues, so both
    decisions and the differential phases match the per-packet receiver
    exactly.
    """

    def key(wave: Waveform) -> tuple:
        ann = wave.annotations
        if ann.get("protocol") is not Protocol.WIFI_B:
            raise ValueError("waveform is not annotated as 802.11b")
        return (
            wave.iq.size,
            _rate_tenths(ann["rate_mbps"]),
            int(ann["payload_start"]),
            int(ann["samples_per_symbol"]),
            int(ann["n_payload_symbols"]),
            bool(ann.get("short_preamble", False)),
            int(ann.get("scrambler_seed", 0x6C)),
        )

    return run_grouped(
        list(waves),
        key,
        lambda group: _demodulate_group(group, n_payload_bits=n_payload_bits),
        where="wifi_b.demodulate_batch",
    )


def _demodulate_group(
    waves: list[Waveform], *, n_payload_bits: int | None
) -> list[WifiBDecodeResult]:
    xp = get_backend().xp
    n_batch = len(waves)
    perf.dispatch("wifi_b.demodulate", n_batch, batched=True)
    ann = waves[0].annotations
    rate = ann["rate_mbps"]
    tenths = _rate_tenths(rate)
    sps = ann["samples_per_symbol"] // (11 if tenths in (10, 20) else 8)
    payload_start = ann["payload_start"]
    short = ann.get("short_preamble", False)
    n_head_symbols = payload_start // (11 * sps)
    iq = xp.stack([w.iq for w in waves])  # (B, n_samples)

    head_syms = _despread_barker_batch(iq, sps, n_head_symbols, 0, xp)
    first_bit = (xp.real(head_syms[:, 0]) < 0).astype(np.uint8)[:, None]
    if short:
        n_sync = 72
        sync_bits = _diff_bits_batch(
            head_syms[:, 1:n_sync], head_syms[:, 0], xp
        )
        hdr_bits = _diff_dibits_batch(
            head_syms[:, n_sync:], head_syms[:, n_sync - 1], xp
        )
        head_onair = xp.concatenate([first_bit, sync_bits, hdr_bits], axis=1)
        sync_len = n_sync
    else:
        body = _diff_bits_batch(head_syms[:, 1:], head_syms[:, 0], xp)
        head_onair = xp.concatenate([first_bit, body], axis=1)
        sync_len = 144

    n_sym = ann["n_payload_symbols"]
    prev = (
        head_syms[:, -1]
        if head_syms.shape[1]
        else xp.full(n_batch, 1.0 + 0j)
    )
    if tenths == 10:
        syms = _despread_barker_batch(iq, sps, n_sym, payload_start, xp)
        psdu_onair = _diff_bits_batch(syms, prev, xp)
    elif tenths == 20:
        syms = _despread_barker_batch(iq, sps, n_sym, payload_start, xp)
        psdu_onair = _diff_dibits_batch(syms, prev, xp)
    elif tenths == 55:
        psdu_onair = _cck_decode_batch(
            iq, sps, n_sym, payload_start, prev, _CCK55_BANK, _CCK55_BITS, xp
        )
    else:
        psdu_onair = _cck_decode_batch(
            iq, sps, n_sym, payload_start, prev, _CCK11_BANK, _CCK11_BITS, xp
        )

    onair = xp.concatenate([head_onair, psdu_onair], axis=1)
    n_head_bits = head_onair.shape[1]
    seed = ann.get("scrambler_seed", 0x6C)

    results = []
    for b in range(n_batch):
        descrambled = bitlib.descramble_80211b(onair[b], seed=seed)
        header_bits = descrambled[sync_len:n_head_bits]
        header_ok = bool(
            header_bits.size == 48
            and np.array_equal(
                bitlib.crc16_80211b_plcp(header_bits[:32]), header_bits[32:48]
            )
        )
        signal = (
            bitlib.int_from_bits(header_bits[:8])
            if header_bits.size == 48
            else 0
        )
        payload_bits = descrambled[n_head_bits:]
        if n_payload_bits is not None:
            payload_bits = payload_bits[:n_payload_bits]
        results.append(
            WifiBDecodeResult(
                payload_bits=payload_bits,
                onair_bits=psdu_onair[b].copy(),
                header_ok=header_ok,
                rate_mbps=_RATE_BY_SIGNAL.get(signal, rate),
            )
        )
    return results


@contracts.shapes("b,_ -> b,_,_")
def _symbol_matrix_batch(
    iq: np.ndarray, sym_len: int, n_symbols: int, start: int, xp: ModuleType
) -> np.ndarray:
    """Batched :func:`_symbol_matrix`: ``(B, n_symbols, sym_len)``."""
    end = start + n_symbols * sym_len
    seg = iq[:, start:end]
    if seg.shape[1] < n_symbols * sym_len:
        seg = xp.pad(seg, ((0, 0), (0, n_symbols * sym_len - seg.shape[1])))
    return seg.reshape(iq.shape[0], n_symbols, sym_len)


@contracts.shapes("b,_ -> b,_")
def _despread_barker_batch(
    iq: np.ndarray, sps: int, n_symbols: int, start: int, xp: ModuleType
) -> np.ndarray:
    """Batched :func:`_despread_barker`: ``(B, n_symbols)`` symbols."""
    chip_kernel = np.repeat(BARKER11, sps) / (11 * sps)
    return _symbol_matrix_batch(iq, 11 * sps, n_symbols, start, xp) @ chip_kernel


@contracts.shapes("b,n ; b -> b,n")
def _diff_bits_batch(
    symbols: np.ndarray, prev: np.ndarray, xp: ModuleType
) -> np.ndarray:
    """Batched :func:`_diff_bits` with a per-row previous symbol."""
    prev_col = xp.asarray(prev).reshape(-1, 1)
    ref = xp.concatenate([prev_col, symbols[:, :-1]], axis=1)
    return (xp.real(symbols * xp.conj(ref)) < 0).astype(np.uint8)


@contracts.shapes("b,n ; b -> b,n*2")
def _diff_dibits_batch(
    symbols: np.ndarray, prev: np.ndarray, xp: ModuleType
) -> np.ndarray:
    """Batched :func:`_diff_dibits`; rows of interleaved (d0, d1) bits."""
    prev_col = xp.asarray(prev).reshape(-1, 1)
    ref = xp.concatenate([prev_col, symbols[:, :-1]], axis=1)
    rot = symbols * xp.conj(ref)
    phase = xp.mod(xp.angle(rot) + np.pi / 4, 2 * np.pi)
    quadrant = (phase // (np.pi / 2)).astype(int)
    return _DQPSK_INV_LUT[quadrant].reshape(symbols.shape[0], -1)


def _cck_decode_batch(
    iq: np.ndarray,
    sps: int,
    n_symbols: int,
    start: int,
    prev: np.ndarray,
    bank: np.ndarray,
    bank_bits: np.ndarray,
    xp: ModuleType,
) -> np.ndarray:
    """Batched :func:`_cck_decode` over stacked captures."""
    n_batch = iq.shape[0]
    if n_symbols == 0:
        return np.zeros((n_batch, 0), dtype=np.uint8)
    chips = (
        _symbol_matrix_batch(iq, 8 * sps, n_symbols, start, xp)
        .reshape(n_batch, n_symbols, 8, sps)
        .mean(axis=3)
    )
    corr = chips @ bank.conj().T  # (B, n_symbols, n_codewords)
    best = xp.argmax(xp.abs(corr), axis=2)
    corr_best = xp.take_along_axis(corr, best[:, :, None], axis=2)[:, :, 0]

    prev_col = xp.asarray(prev).reshape(-1, 1)
    ref = xp.concatenate([prev_col, corr_best[:, :-1]], axis=1)
    rot = corr_best * xp.where(xp.abs(ref) == 0, 1.0 + 0j, xp.conj(ref))
    phase = xp.mod(xp.angle(rot) + np.pi / 4, 2 * np.pi)
    quadrant = (phase // (np.pi / 2)).astype(int)
    return xp.concatenate(
        [_DQPSK_INV_LUT[quadrant], bank_bits[best]], axis=2
    ).reshape(n_batch, -1)


def demap_psdu_symbols(result: WifiBDecodeResult) -> np.ndarray:
    """On-air (scrambled-domain) PSDU bits, one per DSSS symbol at 1 Mbps.

    The overlay decoder works in this domain (paper §2.4: tag flips act
    on on-air symbols; re-scrambling the received PSDU in host software
    recovers them exactly, since scramble(descramble(x)) == x).
    """
    return result.onair_bits
