"""The shared ``# <tool>: disable=`` pragma grammar.

One implementation, three pragma prefixes (``reprolint:``,
``reproflow:``, ``reproshape:``).  The grammar is deliberately frozen:
existing pragma strings in the tree must keep working verbatim, so any
extension belongs behind a new clause keyword, not a change to the
``disable=`` / ``disable-file=`` forms.
"""

from __future__ import annotations

__all__ = ["FILE_PRAGMA_MAX_LINE", "parse_suppressions", "is_code_suppressed"]

#: ``disable-file=`` pragmas are honored only within the first N lines,
#: keeping file-wide waivers visible at the top of the module.
FILE_PRAGMA_MAX_LINE = 10


def parse_suppressions(
    source: str, tool: str
) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-level ``# <tool>: disable`` pragmas.

    ``# <tool>: disable=U001,F001`` suppresses the listed codes on that
    line; ``# <tool>: disable-file=U003`` within the first
    :data:`FILE_PRAGMA_MAX_LINE` lines suppresses for the whole file;
    ``disable=all`` matches every code.
    """
    marker = f"# {tool}:"
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if marker not in line:
            continue
        _, _, tail = line.partition(marker)
        for clause in tail.strip().split():
            if clause.startswith("disable-file="):
                if lineno <= FILE_PRAGMA_MAX_LINE:
                    codes = clause.removeprefix("disable-file=")
                    per_file.update(c.strip() for c in codes.split(",") if c.strip())
            elif clause.startswith("disable="):
                codes = clause.removeprefix("disable=")
                per_line.setdefault(lineno, set()).update(
                    c.strip() for c in codes.split(",") if c.strip()
                )
    return per_line, per_file


def is_code_suppressed(
    code: str,
    line: int,
    per_line: dict[int, set[str]],
    per_file: set[str],
) -> bool:
    """Whether ``code`` at ``line`` is silenced by the parsed pragmas."""
    for codes in (per_file, per_line.get(line, set())):
        if "all" in codes or code in codes:
            return True
    return False
