"""Content-fingerprinted baseline files shared by the analyzers.

A baseline is a JSON file of *fingerprints* for findings that are
acknowledged but not yet fixed.  Fingerprints hash the file, rule,
enclosing symbol, and message — not the line number — so unrelated
edits to a file do not invalidate the baseline.  The on-disk format
(``{"version": 1, "fingerprints": {...}}``) predates this module and
must stay byte-compatible: reproflow baselines written before the
extraction load unchanged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol

__all__ = ["BaselineBase", "finding_fingerprint"]


def finding_fingerprint(path: str, code: str, symbol: str, message: str) -> str:
    """Line-number-independent identity used by baseline files."""
    norm_path = path.replace("\\", "/")
    raw = f"{norm_path}::{code}::{symbol}::{message}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


class _FindingLike(Protocol):
    path: str
    code: str
    symbol: str

    def fingerprint(self) -> str: ...


@dataclass
class BaselineBase:
    """Acknowledged findings, keyed by fingerprint.

    The value stored per fingerprint is a short human-readable locator
    (``path:code:symbol``) so reviewers can audit the file without
    recomputing hashes.  Subclasses bind ``TOOL`` for error messages;
    the file format itself is tool-agnostic.
    """

    fingerprints: dict[str, str] = field(default_factory=dict)

    VERSION = 1
    TOOL = "analyzer"

    @classmethod
    def load(cls, path: str) -> Any:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or doc.get("version") != cls.VERSION:
            raise ValueError(
                f"{path}: not a {cls.TOOL} baseline (want version={cls.VERSION})"
            )
        fps = doc.get("fingerprints", {})
        if not isinstance(fps, dict):
            raise ValueError(f"{path}: 'fingerprints' must be an object")
        return cls(fingerprints={str(k): str(v) for k, v in fps.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[_FindingLike]) -> Any:
        fps = {
            f.fingerprint(): f"{f.path.replace(chr(92), '/')}:{f.code}:{f.symbol}"
            for f in findings
        }
        return cls(fingerprints=fps)

    def write(self, path: str) -> None:
        doc = {
            "version": self.VERSION,
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def split(
        self, findings: list[Any]
    ) -> tuple[list[Any], list[Any]]:
        """Partition into (new, baselined) findings."""
        new: list[Any] = []
        old: list[Any] = []
        for f in findings:
            (old if f.fingerprint() in self.fingerprints else new).append(f)
        return new, old
