"""Shared CLI conventions: ``--select`` parsing and exit codes.

Every analyzer follows the same contract:

* exit **0** — clean (baselined findings allowed),
* exit **1** — new findings,
* exit **2** — usage or parse errors.

``--select`` takes a comma-separated list of rule codes; reproflow and
reproshape treat entries as *prefixes* (``--select S`` selects every
S-rule), reprolint matches codes exactly — both consume
:func:`parse_select` and differ only in the membership test.
"""

from __future__ import annotations

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "parse_select",
    "selected_by_prefix",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def parse_select(text: str | None) -> tuple[str, ...] | None:
    """``"S001, S003"`` -> ``("S001", "S003")``; ``None``/empty -> ``None``."""
    if not text:
        return None
    codes = tuple(c.strip() for c in text.split(",") if c.strip())
    return codes or None


def selected_by_prefix(code: str, select: tuple[str, ...] | None) -> bool:
    """Prefix-match selection (reproflow/reproshape semantics)."""
    if not select:
        return True
    return any(code.startswith(prefix) for prefix in select)
