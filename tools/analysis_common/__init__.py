"""Shared scaffolding for the repo's static analyzers.

``tools/reprolint`` (per-file AST lint), ``tools/reproflow``
(whole-program units/purity dataflow) and ``tools/reproshape``
(symbolic shape/dtype verification) share three pieces of ergonomics
that used to be copy-pasted per tool:

* **Pragma suppression** — ``# <tool>: disable=CODE`` on the offending
  line, ``# <tool>: disable-file=CODE`` in the first ten lines,
  ``disable=all`` for generated code (:mod:`tools.analysis_common.pragmas`).
* **Baselines** — content-fingerprinted acknowledged-findings files
  (path + code + symbol + message, line-number independent), so
  adopting an analyzer on a dirty tree doesn't require fixing the
  world first (:mod:`tools.analysis_common.baseline`).
* **CLI scaffolding** — ``--select`` parsing and the shared exit-code
  contract: 0 clean, 1 new findings, 2 usage/parse errors
  (:mod:`tools.analysis_common.cli`).

The grammar and file formats are owned here; each analyzer binds its
tool name (pragma prefix, baseline identity) and keeps its own rule
catalog and finding model.
"""

from __future__ import annotations

from tools.analysis_common.baseline import BaselineBase, finding_fingerprint
from tools.analysis_common.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    parse_select,
    selected_by_prefix,
)
from tools.analysis_common.pragmas import (
    FILE_PRAGMA_MAX_LINE,
    is_code_suppressed,
    parse_suppressions,
)

__all__ = [
    "BaselineBase",
    "finding_fingerprint",
    "parse_suppressions",
    "is_code_suppressed",
    "FILE_PRAGMA_MAX_LINE",
    "parse_select",
    "selected_by_prefix",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
]
