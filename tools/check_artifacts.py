#!/usr/bin/env python
"""Validate a run directory of experiment artifacts.

Loads every artifact ``*.json`` under the given directory as a
versioned :class:`repro.experiments.artifacts.ExperimentResult`,
checks its schema (tag, version, provenance stamps), verifies it
re-renders, and confirms a byte-stable re-serialization.  Also audits
the directory's crash hygiene: leftover ``*.tmp`` files from the
atomic-write path are flagged (they indicate an interrupted save --
harmless, but worth knowing about), and a ``manifest.json``
(``repro.experiments.manifest``), when present, must parse, cover
exactly the artifacts on disk it claims, and hash-match every
artifact it marks done.

With ``--expect-all`` the directory must contain one artifact per
registry-declared experiment -- the CI smoke job runs
``run-all --preset quick --out DIR`` and then gates on this.

Usage::

    python tools/check_artifacts.py runs/x
    python tools/check_artifacts.py runs/x --expect-all
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def check_artifact(path: Path) -> list[str]:
    """Problems with one artifact file (empty list means valid)."""
    from repro.experiments.artifacts import ArtifactError, ExperimentResult
    from repro.experiments.registry import PRESET_NAMES

    try:
        result = ExperimentResult.load(path)
    except (ArtifactError, OSError) as exc:
        return [f"unloadable: {exc}"]
    problems = []
    if path.stem != result.name:
        problems.append(f"file name {path.stem!r} != experiment {result.name!r}")
    if result.preset not in PRESET_NAMES:
        problems.append(f"preset {result.preset!r} is not one of {PRESET_NAMES}")
    if not isinstance(result.params, dict):
        problems.append("missing params provenance")
    try:
        rendered = result.render()
    except Exception as exc:  # noqa: BLE001 -- any render failure invalidates
        return problems + [f"render failed: {type(exc).__name__}: {exc}"]
    if not rendered.strip():
        problems.append("render produced no output")
    text = result.to_json()
    if ExperimentResult.from_json(text).to_json() != text:
        problems.append("re-serialization is not byte-stable")
    return problems


def check_manifest(out_dir: Path) -> list[str]:
    """Problems with ``out_dir/manifest.json`` (absent manifest is fine)."""
    from repro.experiments.manifest import (
        MANIFEST_FILENAME,
        ManifestError,
        RunManifest,
    )

    if not (out_dir / MANIFEST_FILENAME).is_file():
        return []
    try:
        manifest = RunManifest.load(out_dir)
    except ManifestError as exc:
        return [f"manifest unloadable: {exc}"]
    problems = []
    for name, entry in manifest.entries.items():
        if entry.status == "done" and not manifest.artifact_ok(name):
            problems.append(
                f"manifest marks {name!r} done but its artifact is "
                f"missing or does not match the recorded sha256"
            )
        elif entry.status == "failed":
            problems.append(
                f"manifest records a failure for {name!r}: "
                f"{entry.error or '<no error recorded>'}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", help="run directory holding *.json artifacts")
    parser.add_argument(
        "--expect-all",
        action="store_true",
        help="require one artifact per registry-declared experiment",
    )
    args = parser.parse_args(argv)

    from repro.core.atomicio import TMP_SUFFIX
    from repro.experiments.manifest import MANIFEST_FILENAME

    out_dir = Path(args.out_dir)
    paths = sorted(
        p for p in out_dir.glob("*.json") if p.name != MANIFEST_FILENAME
    )
    if not paths:
        print(f"no artifacts found under {out_dir}", file=sys.stderr)
        return 1

    failures = 0
    for path in paths:
        problems = check_artifact(path)
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL  {path.name}: {problem}")
        else:
            print(f"ok    {path.name}")

    for leftover in sorted(out_dir.glob(f"*{TMP_SUFFIX}")):
        failures += 1
        print(
            f"FAIL  {leftover.name}: leftover temporary file from an "
            f"interrupted atomic save (crash mid-write?)"
        )

    for problem in check_manifest(out_dir):
        failures += 1
        print(f"FAIL  {MANIFEST_FILENAME}: {problem}")

    if args.expect_all:
        from repro.experiments import registry

        missing = [n for n in registry.names() if not (out_dir / f"{n}.json").is_file()]
        for name in missing:
            failures += 1
            print(f"FAIL  missing artifact for {name}")

    if failures:
        print(f"{failures} problem(s)", file=sys.stderr)
        return 1
    print(f"{len(paths)} artifact(s) valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
