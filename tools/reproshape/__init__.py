"""reproshape — whole-program symbolic shape/dtype verifier.

Third analyzer in the suite (after :mod:`tools.reprolint` and
:mod:`tools.reproflow`).  reproshape parses every
``@contracts.shapes(...)`` / ``@contracts.dtypes(...)`` decorator in
the tree through the *runtime's own* DSL parser
(:func:`repro.core.contracts.parse_shape_spec`), evaluates the shape
mini-language symbolically, and propagates shapes and dtypes along
reproflow's project call graph:

S001  caller/callee shape incompatibility at a call site
S002  caller/callee dtype mismatch or implicit narrow-to-wide widening
S003  ``*_batch`` kernel contract is not the scalar twin's contract
      lifted over the batch axis
S004  public PHY/matching entry point without a contract
S005  contract-derivable in-function shape error (reshape/stack/@/return)

Public entry point: :func:`analyze_paths`.  The CLI lives in
``tools/reproshape/__main__.py`` (``python -m tools.reproshape``).
"""

from __future__ import annotations

import os
import sys

# reproshape interprets the contracts DSL through repro.core.contracts
# itself (one grammar, two interpretations), so ``src`` must be
# importable.  When invoked from the repo root without PYTHONPATH=src
# (``make lint``, CI), bootstrap it from our own location.
try:  # pragma: no cover - exercised implicitly by every import
    import repro.core.contracts  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    _SRC = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")
    )
    if os.path.isdir(_SRC):
        sys.path.insert(0, _SRC)
    import repro.core.contracts  # noqa: F401

from dataclasses import dataclass, field

from tools.analysis_common import selected_by_prefix
from tools.reproflow.project import ProjectIndex
from tools.reproshape.checker import check_project, shape_table
from tools.reproshape.contracts_index import ContractIndex
from tools.reproshape.model import (
    RULES,
    Baseline,
    Finding,
    is_suppressed,
    suppressions,
)

__all__ = [
    "RULES",
    "Finding",
    "Baseline",
    "AnalysisResult",
    "analyze_paths",
    "build_report",
]


@dataclass
class AnalysisResult:
    """Everything one run produced: findings plus the shape table."""

    findings: list[Finding] = field(default_factory=list)
    #: findings matched by ``--baseline`` (reported but non-fatal)
    baselined: list[Finding] = field(default_factory=list)
    #: per-function symbolic shape/dtype table
    table: list[dict[str, object]] = field(default_factory=list)
    #: per-``*_batch``-kernel parity proofs
    parity: list[dict[str, object]] = field(default_factory=list)
    index: ProjectIndex | None = None
    contracts: ContractIndex | None = None
    #: (path, line, message) parse failures (files or contract specs)
    errors: list[tuple[str, int, str]] = field(default_factory=list)


def analyze_paths(
    paths: list[str],
    *,
    select: tuple[str, ...] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Analyze ``paths`` and return findings plus the symbolic tables."""
    index = ProjectIndex.build(paths)
    cindex = ContractIndex(index)
    findings, parity = check_project(index, cindex)

    # rule selection (prefix semantics, like reproflow)
    findings = [f for f in findings if selected_by_prefix(f.code, select)]

    # pragma suppression, by source file
    pragma_cache: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    kept: list[Finding] = []
    for f in findings:
        if f.path not in pragma_cache:
            source = ""
            for mod in index.modules.values():
                if mod.path == f.path:
                    source = mod.source
                    break
            pragma_cache[f.path] = suppressions(source)
        per_line, per_file = pragma_cache[f.path]
        if not is_suppressed(f, per_line, per_file):
            kept.append(f)

    baselined: list[Finding] = []
    if baseline is not None:
        kept, baselined = baseline.split(kept)

    return AnalysisResult(
        findings=kept,
        baselined=baselined,
        table=shape_table(cindex),
        parity=parity,
        index=index,
        contracts=cindex,
        errors=[*index.errors, *cindex.errors],
    )


def build_report(result: AnalysisResult) -> dict[str, object]:
    """JSON report: findings + the per-function symbolic shape table."""
    statuses: dict[str, int] = {}
    for record in result.parity:
        status = str(record.get("status", "unknown"))
        statuses[status] = statuses.get(status, 0) + 1
    return {
        "tool": "reproshape",
        "rules": RULES,
        "findings": [f.to_json() for f in result.findings],
        "baselined": [f.to_json() for f in result.baselined],
        "shape_table": result.table,
        "parity": result.parity,
        "summary": {
            "functions_indexed": (
                len(result.index.functions) if result.index is not None else 0
            ),
            "functions_contracted": len(result.table),
            "parity_status": statuses,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "errors": len(result.errors),
        },
    }
