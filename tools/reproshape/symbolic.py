"""Symbolic dimension algebra for the contracts shape DSL.

A dimension is represented as a multivariate polynomial over *atoms*
with integer coefficients, in canonical form: a mapping from monomial
(sorted ``(atom, power)`` pairs) to coefficient.  Atoms are contract
symbols (``n``, ``b``) plus opaque composites minted for operations
that leave the polynomial ring (``n//4`` when 4 does not divide every
coefficient, ``n % k``, symbolic exponents).  Two dims built from the
same expression therefore always canonicalize identically, and
arithmetic identities (``n*8 + n*3 == n*11``) hold by construction.

Decidability contract: every atom is assumed to be an integer ``>= 1``
(array dimensions; zero-length edge cases are the runtime checker's
business).  Under that assumption a difference polynomial whose
nonzero coefficients all share one sign is provably nonzero, which is
what :meth:`SymDim.provably_ne` exploits.  Everything else is
"unknown" and the analyzer stays silent — a static verifier must
under-approximate, never guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.contracts import DIM_WILDCARD, dim_kind, parse_dim_expr

__all__ = ["SymDim", "SymShape", "sym_from_dim", "render_shape", "unify_dims"]

#: canonical monomial: sorted ((atom, power), ...); () is the constant term
_Monomial = tuple[tuple[str, int], ...]


def _clean(terms: dict[_Monomial, int]) -> dict[_Monomial, int]:
    return {m: c for m, c in terms.items() if c != 0}


@dataclass(frozen=True)
class SymDim:
    """One symbolic dimension in canonical polynomial form."""

    #: monomial -> integer coefficient (no zero coefficients stored)
    terms: tuple[tuple[_Monomial, int], ...]

    # ------------------------------------------------------ constructors
    @classmethod
    def _from_dict(cls, terms: dict[_Monomial, int]) -> "SymDim":
        cleaned = _clean(terms)
        return cls(terms=tuple(sorted(cleaned.items())))

    @classmethod
    def const(cls, value: int) -> "SymDim":
        return cls._from_dict({(): int(value)})

    @classmethod
    def atom(cls, name: str) -> "SymDim":
        return cls._from_dict({((name, 1),): 1})

    # --------------------------------------------------------- predicates
    def _dict(self) -> dict[_Monomial, int]:
        return dict(self.terms)

    @property
    def is_const(self) -> bool:
        return all(m == () for m, _ in self.terms)

    @property
    def const_value(self) -> int:
        """Constant value (0 for the empty polynomial); only meaningful
        when :attr:`is_const` holds."""
        return dict(self.terms).get((), 0)

    def atoms(self) -> set[str]:
        return {name for m, _ in self.terms for name, _power in m}

    # --------------------------------------------------------- arithmetic
    def __add__(self, other: "SymDim") -> "SymDim":
        out = self._dict()
        for m, c in other.terms:
            out[m] = out.get(m, 0) + c
        return SymDim._from_dict(out)

    def __sub__(self, other: "SymDim") -> "SymDim":
        out = self._dict()
        for m, c in other.terms:
            out[m] = out.get(m, 0) - c
        return SymDim._from_dict(out)

    def __neg__(self) -> "SymDim":
        return SymDim._from_dict({m: -c for m, c in self.terms})

    def __mul__(self, other: "SymDim") -> "SymDim":
        out: dict[_Monomial, int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                powers: dict[str, int] = {}
                for name, p in (*m1, *m2):
                    powers[name] = powers.get(name, 0) + p
                mono: _Monomial = tuple(sorted(powers.items()))
                out[mono] = out.get(mono, 0) + c1 * c2
        return SymDim._from_dict(out)

    def _opaque(self, op: str, other: "SymDim") -> "SymDim":
        return SymDim.atom(f"({self}){op}({other})")

    def floordiv(self, other: "SymDim") -> "SymDim":
        if not self.terms:
            return self  # 0 // x == 0
        if other.is_const and other.const_value != 0:
            c = other.const_value
            if all(coeff % c == 0 for _, coeff in self.terms):
                return SymDim._from_dict({m: coeff // c for m, coeff in self.terms})
        if self.is_const and other.is_const and other.const_value != 0:
            return SymDim.const(self.const_value // other.const_value)
        return self._opaque("//", other)

    def mod(self, other: "SymDim") -> "SymDim":
        if not self.terms:
            return self
        if self.is_const and other.is_const and other.const_value != 0:
            return SymDim.const(self.const_value % other.const_value)
        return self._opaque("%", other)

    def pow(self, other: "SymDim") -> "SymDim":
        if other.is_const and other.const_value >= 0:
            result = SymDim.const(1)
            for _ in range(other.const_value):
                result = result * self
            return result
        return self._opaque("**", other)

    # ------------------------------------------------------- decidability
    def provably_eq(self, other: "SymDim") -> bool:
        return not (self - other).terms

    def provably_ne(self, other: "SymDim") -> bool:
        """Nonzero for *every* assignment of integers >= 1 to atoms.

        True iff the difference polynomial is nonempty and all its
        coefficients share one sign: each monomial then contributes at
        least ``|coeff|`` in that direction.
        """
        diff = (self - other).terms
        if not diff:
            return False
        signs = {c > 0 for _, c in diff}
        return len(signs) == 1

    # -------------------------------------------------------- operations
    def subst(self, mapping: Mapping[str, "SymDim"]) -> "SymDim":
        """Replace atoms with dims; unmapped atoms stay symbolic."""
        result = SymDim.const(0)
        for m, c in self.terms:
            term = SymDim.const(c)
            for name, power in m:
                base = mapping.get(name, SymDim.atom(name))
                term = term * base.pow(SymDim.const(power))
            result = result + term
        return result

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts: list[str] = []
        for m, c in self.terms:
            factors = [
                name if p == 1 else f"{name}**{p}" for name, p in m
            ]
            if not factors:
                text = str(abs(c))
            elif abs(c) == 1:
                text = "*".join(factors)
            else:
                text = "*".join([str(abs(c)), *factors])
            parts.append(("-" if c < 0 else "+") + text)
        joined = "".join(parts)
        return joined[1:] if joined.startswith("+") else joined


#: A symbolic array shape; ``None`` entries are wildcard/unknown dims.
SymShape = tuple["SymDim | None", ...]


def render_shape(shape: SymShape | None) -> str:
    """``(n, 64)``-style display form, ``?`` for unknown dims."""
    if shape is None:
        return "?"
    inner = ", ".join("?" if d is None else str(d) for d in shape)
    return f"({inner},)" if len(shape) == 1 else f"({inner})"


def _fold(node: ast.expr, binder: Callable[[str], "SymDim | None"]) -> SymDim | None:
    if isinstance(node, ast.Constant):
        return SymDim.const(node.value)
    if isinstance(node, ast.Name):
        return binder(node.id)
    if isinstance(node, ast.UnaryOp):
        value = _fold(node.operand, binder)
        if value is None:
            return None
        return -value if isinstance(node.op, ast.USub) else value
    assert isinstance(node, ast.BinOp)
    left, right = _fold(node.left, binder), _fold(node.right, binder)
    if left is None or right is None:
        return None
    if isinstance(node.op, ast.Add):
        return left + right
    if isinstance(node.op, ast.Sub):
        return left - right
    if isinstance(node.op, ast.Mult):
        return left * right
    if isinstance(node.op, ast.FloorDiv):
        return left.floordiv(right)
    if isinstance(node.op, ast.Div):
        # The runtime truncates at the end of evaluation; symbolically we
        # only keep exact divisions and go opaque otherwise, which is the
        # same answer whenever the runtime check would have been exact.
        return left.floordiv(right)
    if isinstance(node.op, ast.Mod):
        return left.mod(right)
    assert isinstance(node.op, ast.Pow)
    return left.pow(right)


def sym_from_dim(
    dim: str, binder: Callable[[str], "SymDim | None"]
) -> SymDim | None:
    """Interpret one DSL dim token symbolically.

    ``binder`` maps a symbol name to its dim (typically
    ``SymDim.atom`` for a function's own contract, or a unification
    binding at a call site); returning ``None`` from the binder makes
    the whole dim unknown.  Wildcards are always unknown.
    """
    kind = dim_kind(dim)
    if kind == "wildcard" or dim == DIM_WILDCARD:
        return None
    if kind == "literal":
        return SymDim.const(int(dim))
    if kind == "symbol":
        return binder(dim)
    return _fold(parse_dim_expr(dim).body, binder)


def unify_dims(
    spec_dims: tuple[str, ...],
    actual: SymShape,
    binding: dict[str, SymDim],
) -> str | None:
    """Match one callee arg spec against a caller's symbolic shape.

    Symbols bind on first sight into ``binding`` (shared across the
    call's arg specs, exactly like the runtime checker); literals and
    already-bound symbols/expressions must not be *provably* unequal.
    Returns a human-readable mismatch description, or ``None`` if the
    shapes are compatible (or undecidable, which counts as compatible
    for a conservative analyzer).
    """
    if len(spec_dims) != len(actual):
        return (
            f"rank mismatch: contract expects {len(spec_dims)}-D "
            f"({','.join(spec_dims)}), got {len(actual)}-D "
            f"{render_shape(actual)}"
        )
    for i, (dim, have) in enumerate(zip(spec_dims, actual)):
        if have is None or dim_kind(dim) == "wildcard":
            continue
        if dim_kind(dim) == "symbol" and dim not in binding:
            binding[dim] = have
            continue
        want = sym_from_dim(dim, binding.get)
        if want is None:
            continue
        if want.provably_ne(have):
            return (
                f"axis {i}: contract dim {dim!r} = {want} "
                f"!= actual {have}"
            )
    return None
