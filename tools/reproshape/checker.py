"""The S-rules: symbolic shape/dtype verification over the call graph.

``check_project`` runs three passes over a
:class:`tools.reproshape.contracts_index.ContractIndex`:

* **Coverage (S004)** — public entry points in the strict contract
  directories must declare a contract.
* **Parity (S003)** — every ``*_batch`` kernel's contract must be its
  scalar twin's contract lifted over the batch axis (stacked form) or
  the scalar contract applied per item (ragged/bracketed form).
* **Abstract interpretation (S001/S002/S005)** — each function body is
  walked once with a symbolic environment seeded from its own
  contract; project call sites are unified against the callee's
  contract, callee output specs propagate shapes forward, and locally
  decidable operations (``reshape``, ``@``, ``np.stack``, ``return``)
  are checked against what the contracts imply.

Every check is *conservative*: a finding is only emitted when the
contracts prove a mismatch for all admissible dimension values
(atoms >= 1); anything undecidable stays silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.core.contracts import ArgSpec, ShapeSpec, dim_kind

from tools.reproflow.project import (
    ModuleInfo,
    ProjectIndex,
    _dotted,
    local_instance_map,
    resolve_call,
)
from tools.reproshape.contracts_index import ContractIndex, ContractInfo
from tools.reproshape.model import Finding
from tools.reproshape.symbolic import (
    SymDim,
    SymShape,
    render_shape,
    sym_from_dim,
    unify_dims,
)

__all__ = [
    "STRICT_CONTRACT_DIRS",
    "ENTRY_POINT_NAMES",
    "check_project",
    "shape_table",
]

#: Path fragments (posix form) where S003/S004 are enforced strictly.
STRICT_CONTRACT_DIRS: tuple[str, ...] = ("repro/phy/", "repro/core/matching")

#: Public entry-point names S004 requires a contract on.
ENTRY_POINT_NAMES: frozenset[str] = frozenset(
    {
        "modulate",
        "demodulate",
        "modulate_batch",
        "demodulate_batch",
        "decode",
        "decode_soft",
        "decode_batch",
        "decode_soft_batch",
        "score_capture",
        "score_capture_batch",
    }
)

#: Builtins whose call result is never an ndarray.
_SCALAR_BUILTINS = frozenset(
    {"len", "int", "float", "bool", "str", "min", "max", "sum", "round", "range"}
)

#: (actual, expected) dtype pairs that are implicit narrow->wide widenings.
_WIDENINGS = frozenset({("float32", "float64"), ("complex64", "complex128")})


def in_strict_dirs(path: str) -> bool:
    norm = path.replace("\\", "/")
    return any(fragment in norm for fragment in STRICT_CONTRACT_DIRS)


# ----------------------------------------------------------------------
# S004: contract coverage on public entry points
# ----------------------------------------------------------------------
def check_coverage(cindex: ContractIndex) -> list[Finding]:
    findings: list[Finding] = []
    for fq, info in sorted(cindex.by_fq.items()):
        fn = info.fn
        if (
            "." in fn.qualname  # methods / nested defs are out of scope
            or fn.qualname not in ENTRY_POINT_NAMES
            or not in_strict_dirs(fn.path)
        ):
            continue
        if not info.array_param_names():
            continue  # Waveform-level API; contracts have nothing to grab
        if not info.has_contract:
            findings.append(
                Finding(
                    path=fn.path,
                    line=fn.node.lineno,
                    col=fn.node.col_offset + 1,
                    code="S004",
                    message=(
                        f"public entry point {fn.qualname}() takes array "
                        "argument(s) but declares no shapes/dtypes contract"
                    ),
                    symbol=fq,
                )
            )
    return findings


# ----------------------------------------------------------------------
# S003: batch/scalar contract parity
# ----------------------------------------------------------------------
def _lifted_equal(batch: ShapeSpec, scalar: ShapeSpec) -> str | None:
    """Stacked-mode proof: batch spec == scalar spec with a prepended
    batch axis on every array argument and the output.

    Returns a mismatch description or ``None`` when parity holds.
    Extra batch-side arg specs of exactly ``(lead,)`` are allowed —
    per-packet scalar state (e.g. a previous-symbol seed) lifts to a
    1-D array over the batch axis.
    """
    if not batch.args or not batch.args[0].dims:
        return "batch contract declares no array arguments"
    lead = batch.args[0].dims[0]
    if dim_kind(lead) != "symbol":
        return f"leading batch dim {lead!r} is not a symbol"
    si = 0
    for i, barg in enumerate(batch.args):
        if si < len(scalar.args) and barg.dims == (lead, *scalar.args[si].dims):
            si += 1
        elif barg.dims == (lead,):
            continue
        else:
            want = (
                f"({lead},{','.join(scalar.args[si].dims)})"
                if si < len(scalar.args)
                else f"({lead},)"
            )
            return (
                f"arg {i} spec ({','.join(barg.dims)}) is not the scalar "
                f"contract lifted over the batch axis (expected {want})"
            )
    if si != len(scalar.args):
        return (
            f"scalar contract arg {si} ({','.join(scalar.args[si].dims)}) "
            "has no lifted counterpart in the batch contract"
        )
    bout, sout = batch.out_dims, scalar.out_dims
    if sout is None:
        if bout is not None and bout != (lead,):
            return (
                f"output spec ({','.join(bout)}) declared on the batch side "
                "only; scalar twin declares no output"
            )
    elif bout != (lead, *sout):
        have = ",".join(bout) if bout is not None else "<none>"
        return (
            f"output spec ({have}) is not the scalar output "
            f"({','.join(sout)}) lifted over the batch axis"
        )
    return None


def _ragged_equal(batch: ShapeSpec, scalar: ShapeSpec) -> str | None:
    """Ragged-mode proof: unbracketed per-item specs == scalar specs."""
    if len(batch.args) != len(scalar.args):
        return (
            f"batch contract declares {len(batch.args)} array argument(s), "
            f"scalar twin declares {len(scalar.args)}"
        )
    for i, (barg, sarg) in enumerate(zip(batch.args, scalar.args)):
        if barg.dims != sarg.dims:
            return (
                f"arg {i} per-item spec ({','.join(barg.dims)}) != scalar "
                f"spec ({','.join(sarg.dims)})"
            )
    if batch.out_dims != scalar.out_dims:
        return "output specs differ between batch and scalar contracts"
    return None


def _dtype_parity(batch: ContractInfo, scalar: ContractInfo) -> str | None:
    if (batch.dtype_args is None) != (scalar.dtype_args is None):
        missing = "batch" if batch.dtype_args is None else "scalar"
        return f"dtypes contract declared on one side only (missing on {missing})"
    if batch.dtype_args is not None and (
        batch.dtype_args != scalar.dtype_args or batch.dtype_out != scalar.dtype_out
    ):
        return (
            f"dtypes contracts differ: batch {batch.dtype_args}"
            f"->{batch.dtype_out} vs scalar {scalar.dtype_args}"
            f"->{scalar.dtype_out}"
        )
    return None


def _twin_of(cindex: ContractIndex, info: ContractInfo) -> ContractInfo | None:
    fn = info.fn
    base = fn.qualname[: -len("_batch")]
    candidates = [base]
    if base.startswith("_"):
        candidates.append(base[1:])
    mod = cindex.project.modules.get(fn.module)
    if mod is None:
        return None
    for cand in candidates:
        if cand and cand in mod.functions:
            return cindex.get(mod.functions[cand].fq)
    return None


def check_parity(
    cindex: ContractIndex,
) -> tuple[list[Finding], list[dict[str, object]]]:
    findings: list[Finding] = []
    records: list[dict[str, object]] = []
    for fq, info in sorted(cindex.by_fq.items()):
        fn = info.fn
        if not fn.qualname.endswith("_batch") or "." in fn.qualname:
            continue
        record: dict[str, object] = {"batch": fq}
        scalar = _twin_of(cindex, info)
        if scalar is None:
            record["status"] = "no-twin"
            records.append(record)
            continue
        record["scalar"] = scalar.fn.fq
        strict = in_strict_dirs(fn.path)

        def emit(detail: str) -> None:
            findings.append(
                Finding(
                    path=fn.path,
                    line=info.shapes_line or fn.node.lineno,
                    col=fn.node.col_offset + 1,
                    code="S003",
                    message=(
                        f"batch/scalar parity broken for {fn.qualname}() vs "
                        f"{scalar.fn.qualname}(): {detail}"
                    ),
                    symbol=fq,
                )
            )
            record["status"] = "violation"
            record["detail"] = detail

        if info.is_ragged:
            record["mode"] = "ragged"
            assert info.shape is not None
            if scalar.shape is None:
                record["status"] = "unproven"
                record["detail"] = "scalar twin has no shapes contract"
            else:
                mismatch = _ragged_equal(info.shape, scalar.shape)
                if mismatch is not None:
                    emit(mismatch)
                else:
                    record["status"] = "proven"
        elif info.shape is not None:
            record["mode"] = "stacked"
            if scalar.shape is None:
                if not scalar.array_param_names():
                    record["status"] = "exempt-no-arrays"
                elif strict:
                    emit("scalar twin lacks a shapes contract; parity unprovable")
                else:
                    record["status"] = "unproven"
                    record["detail"] = "scalar twin has no shapes contract"
            else:
                mismatch = _lifted_equal(info.shape, scalar.shape)
                if mismatch is not None:
                    emit(mismatch)
                else:
                    record["status"] = "proven"
        else:
            record["mode"] = "uncontracted"
            if scalar.shape is not None and info.array_param_names() and strict:
                emit("batch kernel lacks a shapes contract; parity unprovable")
            elif not info.array_param_names() and not scalar.array_param_names():
                record["status"] = "exempt-no-arrays"
            elif info.dtype_args is not None and scalar.dtype_args is not None:
                record["status"] = "proven-dtypes"
            else:
                record["status"] = "unproven"

        if record.get("status") != "violation":
            dt = _dtype_parity(info, scalar)
            if dt is not None and strict and record.get("status") != "exempt-no-arrays":
                emit(dt)
        records.append(record)
    return findings, records


# ----------------------------------------------------------------------
# S001/S002/S005: abstract interpretation of function bodies
# ----------------------------------------------------------------------
@dataclass
class _Abstract:
    """Classification of one expression: arrayness + shape + dtype."""

    kind: str  # "array" | "nonarray" | "unknown"
    shape: SymShape | None = None  # known only for kind == "array"
    dtype: str | None = None


_UNKNOWN = _Abstract("unknown")
_NONARRAY = _Abstract("nonarray")


@dataclass
class _Env:
    shapes: dict[str, _Abstract] = field(default_factory=dict)

    def copy(self) -> "_Env":
        return _Env(shapes=dict(self.shapes))

    def kill(self, name: str) -> None:
        self.shapes.pop(name, None)


def _assigned_names(node: ast.AST) -> set[str]:
    out: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            for t in targets:
                for leaf in ast.walk(t):
                    if isinstance(leaf, ast.Name):
                        out.add(leaf.id)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(child.target):
                if isinstance(leaf, ast.Name):
                    out.add(leaf.id)
        elif isinstance(child, ast.withitem) and child.optional_vars is not None:
            for leaf in ast.walk(child.optional_vars):
                if isinstance(leaf, ast.Name):
                    out.add(leaf.id)
        elif isinstance(child, ast.NamedExpr) and isinstance(child.target, ast.Name):
            out.add(child.target.id)
    return out


class _BodyChecker:
    """One function's abstract interpretation (program order, branch-safe)."""

    def __init__(
        self,
        project: ProjectIndex,
        mod: ModuleInfo,
        cindex: ContractIndex,
        info: ContractInfo,
        findings: list[Finding],
    ) -> None:
        self.project = project
        self.mod = mod
        self.cindex = cindex
        self.info = info
        self.fn = info.fn
        self.findings = findings
        self.env = _Env()
        self.local_instances = local_instance_map(project, mod, info.fn)
        #: call nodes already checked (an expression can be both visited
        #: as a statement child and re-inferred as an assignment value)
        self._checked: dict[int, _Abstract] = {}
        self._seed()

    # ------------------------------------------------------------- setup
    def _seed(self) -> None:
        spec_for: dict[str, ArgSpec] = {}
        if self.info.shape is not None and self.info.shape_params is not None:
            spec_for = dict(zip(self.info.shape_params, self.info.shape.args))
        dtype_for: dict[str, str] = {}
        if self.info.dtype_args is not None and self.info.dtype_params is not None:
            dtype_for = {
                name: dt
                for name, dt in zip(self.info.dtype_params, self.info.dtype_args)
                if dt is not None
            }
        for name, kind in self.info.params:
            if kind == "array":
                spec = spec_for.get(name)
                shape: SymShape | None = None
                if spec is not None and not spec.per_item:
                    shape = tuple(sym_from_dim(d, self._own_atom) for d in spec.dims)
                self.env.shapes[name] = _Abstract(
                    "array", shape=shape, dtype=dtype_for.get(name)
                )
            elif kind == "other":
                self.env.shapes[name] = _NONARRAY
            # "seq" and "unknown" stay unknown: the runtime matcher may
            # or may not consume them depending on the value's type

    @staticmethod
    def _own_atom(symbol: str) -> SymDim:
        return SymDim.atom(symbol)

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
                symbol=self.fn.fq,
            )
        )

    # ----------------------------------------------------- statement walk
    def run(self) -> None:
        self._stmts(self.fn.node.body)

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes execute elsewhere
        if isinstance(stmt, ast.Assign):
            self._scan_exprs(stmt.value)
            value = self._infer(stmt.value)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                self.env.shapes[stmt.targets[0].id] = value
            else:
                for t in stmt.targets:
                    for leaf in ast.walk(t):
                        if isinstance(leaf, ast.Name):
                            self.env.kill(leaf.id)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_exprs(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    self.env.shapes[stmt.target.id] = self._infer(stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_exprs(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env.kill(stmt.target.id)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_exprs(stmt.value)
                self._check_return(stmt)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_exprs(stmt.iter)
            self._branch_bodies([stmt.body, stmt.orelse], loop_node=stmt)
            return
        if isinstance(stmt, ast.While):
            self._scan_exprs(stmt.test)
            self._branch_bodies([stmt.body, stmt.orelse], loop_node=stmt)
            return
        if isinstance(stmt, ast.If):
            self._scan_exprs(stmt.test)
            self._branch_bodies([stmt.body, stmt.orelse])
            return
        if isinstance(stmt, ast.Try):
            handler_bodies = [h.body for h in stmt.handlers]
            self._branch_bodies(
                [stmt.body, *handler_bodies, stmt.orelse, stmt.finalbody]
            )
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_exprs(item.context_expr)
            for name in _assigned_names(stmt):
                self.env.kill(name)
            self._stmts(stmt.body)
            return
        if isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                for leaf in ast.walk(t):
                    if isinstance(leaf, ast.Name):
                        self.env.kill(leaf.id)
            return
        # default: check every expression the statement contains
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_exprs(child)

    def _branch_bodies(
        self, bodies: list[list[ast.stmt]], loop_node: ast.stmt | None = None
    ) -> None:
        """Interpret alternative bodies on env snapshots, then keep only
        the facts that survive every path (plus pre-state for empty
        branches).  Loop bodies additionally kill every name they
        assign — the snapshot models iteration one only."""
        entry = self.env.copy()
        if isinstance(loop_node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(loop_node.target):
                if isinstance(leaf, ast.Name):
                    entry.kill(leaf.id)
        exits: list[_Env] = []
        for body in bodies:
            if not body:
                exits.append(entry.copy())
                continue
            self.env = entry.copy()
            self._stmts(body)
            exits.append(self.env)
        merged = _Env()
        if exits:
            first = exits[0]
            for name, value in first.shapes.items():
                if all(e.shapes.get(name) == value for e in exits[1:]):
                    merged.shapes[name] = value
        self.env = merged
        if loop_node is not None:
            for name in _assigned_names(loop_node):
                self.env.kill(name)

    def _scan_exprs(self, expr: ast.expr) -> None:
        """Check every call/matmul in an expression tree.

        Names bound by lambdas, comprehensions, or walrus expressions
        inside the tree shadow (or rebind) enclosing locals, so their
        env entries are dropped for the duration of the scan — checks
        under a shadowed name degrade to "unknown" instead of using a
        stale shape.
        """
        shadowed: set[str] = set()
        rebound: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                a = node.args
                shadowed.update(
                    p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    shadowed.update(
                        leaf.id
                        for leaf in ast.walk(gen.target)
                        if isinstance(leaf, ast.Name)
                    )
            elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                rebound.add(node.target.id)
        saved = {
            name: self.env.shapes.pop(name)
            for name in shadowed | rebound
            if name in self.env.shapes
        }
        try:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self._call(node)
                elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                    self._check_matmul(node)
        finally:
            # lambda/comprehension shadowing ends with the expression;
            # walrus targets were genuinely rebound and stay unknown
            self.env.shapes.update(
                {name: v for name, v in saved.items() if name not in rebound}
            )

    # ------------------------------------------------------ call checking
    def _call(self, node: ast.Call) -> _Abstract:
        cached = self._checked.get(id(node))
        if cached is not None:
            return cached
        result = self._check_call(node)
        self._checked[id(node)] = result
        return result

    def _check_call(self, node: ast.Call) -> _Abstract:
        func = node.func
        # ndarray.reshape(...): locally decidable element-count check
        if isinstance(func, ast.Attribute) and func.attr == "reshape":
            return self._check_reshape(node)
        dotted = _dotted(func)
        if dotted.split(".")[-1] in _SCALAR_BUILTINS and "." not in dotted:
            return _NONARRAY
        if dotted in ("np.stack", "numpy.stack"):
            self._check_stack(node)
            return _Abstract("array")
        if dotted.split(".")[-1] in ("asarray", "ascontiguousarray", "asfortranarray"):
            inner = self._infer(node.args[0]) if node.args else _UNKNOWN
            return _Abstract("array", shape=inner.shape if inner.kind == "array" else None)

        callee = resolve_call(self.project, self.mod, self.fn, node, self.local_instances)
        if callee is None:
            return _UNKNOWN
        cinfo = self.cindex.get(callee.fq)
        if cinfo is None or not cinfo.has_contract or cinfo.is_ragged:
            return _UNKNOWN
        if any(isinstance(a, ast.Starred) for a in node.args):
            return _UNKNOWN
        classified = [self._infer(a) for a in node.args]
        if any(c.kind == "unknown" for c in classified):
            return _UNKNOWN
        arrays = [
            (i, c) for i, c in enumerate(classified) if c.kind == "array"
        ]

        binding: dict[str, SymDim] = {}
        if cinfo.shape is not None:
            if len(arrays) != len(cinfo.shape.args):
                self._emit(
                    node,
                    "S001",
                    f"{callee.qualname}() contract {cinfo.shapes_spec!r} declares "
                    f"{len(cinfo.shape.args)} array argument(s), call passes "
                    f"{len(arrays)}",
                )
                return _UNKNOWN
            for spec, (i, abstract) in zip(cinfo.shape.args, arrays):
                if abstract.shape is None:
                    continue
                mismatch = unify_dims(spec.dims, abstract.shape, binding)
                if mismatch is not None:
                    self._emit(
                        node,
                        "S001",
                        f"array argument {i} of {callee.qualname}() has shape "
                        f"{render_shape(abstract.shape)}, incompatible with "
                        f"contract {cinfo.shapes_spec!r}: {mismatch}",
                    )
        if cinfo.dtype_args is not None:
            for (i, abstract), expected in zip(arrays, cinfo.dtype_args):
                if expected is None or abstract.dtype is None:
                    continue
                if abstract.dtype != expected:
                    widen = (
                        " (implicit narrow-to-wide widening)"
                        if (abstract.dtype, expected) in _WIDENINGS
                        else ""
                    )
                    self._emit(
                        node,
                        "S002",
                        f"array argument {i} of {callee.qualname}() has dtype "
                        f"{abstract.dtype}, contract expects {expected}{widen}",
                    )

        out_shape: SymShape | None = None
        if cinfo.shape is not None and cinfo.shape.out_dims is not None:
            out_shape = tuple(
                sym_from_dim(d, binding.get) for d in cinfo.shape.out_dims
            )
        if cinfo.shape is not None and cinfo.shape.out_dims is not None:
            return _Abstract("array", shape=out_shape, dtype=cinfo.dtype_out)
        if cinfo.dtype_out is not None:
            return _Abstract("array", dtype=cinfo.dtype_out)
        return _UNKNOWN

    # --------------------------------------------------- local S005 checks
    def _reshape_target(self, node: ast.Call) -> list[ast.expr] | None:
        args = list(node.args)
        if len(args) == 1 and isinstance(args[0], ast.Tuple):
            args = list(args[0].elts)
        return args or None

    def _check_reshape(self, node: ast.Call) -> _Abstract:
        assert isinstance(node.func, ast.Attribute)
        base = self._infer(node.func.value)
        args = self._reshape_target(node)
        if args is None:
            return _Abstract("array", dtype=base.dtype)
        target: list[SymDim | None] = []
        negative_one = False
        for a in args:
            if (
                isinstance(a, ast.UnaryOp)
                and isinstance(a.op, ast.USub)
                and isinstance(a.operand, ast.Constant)
                and a.operand.value == 1
            ):
                negative_one = True
                target.append(None)
            elif isinstance(a, ast.Constant) and isinstance(a.value, int):
                target.append(SymDim.const(a.value))
            else:
                target.append(None)
        result_shape: SymShape = tuple(target)
        if (
            base.kind == "array"
            and base.shape is not None
            and all(d is not None for d in base.shape)
            and not negative_one
            and all(d is not None for d in target)
        ):
            src = SymDim.const(1)
            for d in base.shape:
                assert d is not None
                src = src * d
            dst = SymDim.const(1)
            for d in target:
                assert d is not None
                dst = dst * d
            if src.provably_ne(dst):
                self._emit(
                    node,
                    "S005",
                    f"reshape of {render_shape(base.shape)} ({src} elements) "
                    f"to {render_shape(result_shape)} ({dst} elements) can "
                    "never succeed",
                )
        return _Abstract("array", shape=result_shape, dtype=base.dtype)

    def _check_stack(self, node: ast.Call) -> None:
        if not node.args or not isinstance(node.args[0], (ast.List, ast.Tuple)):
            return
        shapes = [self._infer(e) for e in node.args[0].elts]
        known = [s.shape for s in shapes if s.kind == "array" and s.shape is not None]
        for i in range(1, len(known)):
            a, b = known[0], known[i]
            if len(a) != len(b):
                self._emit(
                    node,
                    "S005",
                    f"np.stack() operands have different ranks: "
                    f"{render_shape(a)} vs {render_shape(b)}",
                )
                return
            for axis, (da, db) in enumerate(zip(a, b)):
                if da is not None and db is not None and da.provably_ne(db):
                    self._emit(
                        node,
                        "S005",
                        f"np.stack() operands disagree on axis {axis}: "
                        f"{render_shape(a)} vs {render_shape(b)}",
                    )
                    return

    def _check_matmul(self, node: ast.BinOp) -> None:
        left, right = self._infer(node.left), self._infer(node.right)
        if (
            left.kind != "array"
            or right.kind != "array"
            or left.shape is None
            or right.shape is None
            or not left.shape
            or not right.shape
        ):
            return
        inner_l = left.shape[-1]
        inner_r = right.shape[-2] if len(right.shape) >= 2 else right.shape[-1]
        if inner_l is not None and inner_r is not None and inner_l.provably_ne(inner_r):
            self._emit(
                node,
                "S005",
                f"matmul inner dimensions can never match: "
                f"{render_shape(left.shape)} @ {render_shape(right.shape)} "
                f"({inner_l} vs {inner_r})",
            )

    def _check_return(self, stmt: ast.Return) -> None:
        if self.info.shape is None or self.info.shape.out_dims is None:
            return
        assert stmt.value is not None
        value = self._infer(stmt.value)
        if value.kind != "array" or value.shape is None:
            return
        out = self.info.shape.out_dims
        if len(out) != len(value.shape):
            self._emit(
                stmt,
                "S005",
                f"return value has rank {len(value.shape)} "
                f"{render_shape(value.shape)}, own contract "
                f"{self.info.shapes_spec!r} declares {len(out)}-D output",
            )
            return
        for axis, (dim, have) in enumerate(zip(out, value.shape)):
            if have is None:
                continue
            want = sym_from_dim(dim, self._own_atom)
            if want is not None and want.provably_ne(have):
                self._emit(
                    stmt,
                    "S005",
                    f"return axis {axis} is {have}, own contract "
                    f"{self.info.shapes_spec!r} declares {dim!r} = {want}",
                )

    # ----------------------------------------------------------- inference
    def _infer(self, expr: ast.expr) -> _Abstract:
        if isinstance(expr, ast.Name):
            return self.env.shapes.get(expr.id, _UNKNOWN)
        if isinstance(expr, ast.Constant):
            return _NONARRAY
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set, ast.Dict, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp, ast.JoinedStr)):
            return _NONARRAY  # not ndarrays; plain-spec matching skips these
        if isinstance(expr, ast.UnaryOp):
            inner = self._infer(expr.operand)
            if isinstance(expr.op, ast.Not):
                return _NONARRAY
            return inner
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.MatMult):
                left = self._infer(expr.left)
                return _Abstract("array") if left.kind == "array" else _UNKNOWN
            left, right = self._infer(expr.left), self._infer(expr.right)
            kinds = {left.kind, right.kind}
            if kinds == {"nonarray"}:
                return _NONARRAY
            if "array" in kinds:
                if left.kind == "array" and right.kind == "nonarray":
                    return _Abstract("array", shape=left.shape, dtype=left.dtype)
                if right.kind == "array" and left.kind == "nonarray":
                    return _Abstract("array", shape=right.shape, dtype=right.dtype)
                if (
                    left.kind == "array"
                    and right.kind == "array"
                    and left.shape is not None
                    and left.shape == right.shape
                ):
                    return _Abstract("array", shape=left.shape)
                return _Abstract("array")
            return _UNKNOWN
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Subscript):
            base = self._infer(expr.value)
            if base.kind != "array" or base.shape is None:
                return _UNKNOWN
            index = expr.slice
            if isinstance(index, ast.Slice):
                return _Abstract(
                    "array", shape=(None, *base.shape[1:]), dtype=base.dtype
                )
            if isinstance(index, ast.Tuple):
                return _UNKNOWN
            # single integer index drops the leading axis
            if len(base.shape) == 1:
                return _NONARRAY
            return _Abstract("array", shape=base.shape[1:], dtype=base.dtype)
        if isinstance(expr, ast.Attribute):
            if expr.attr in ("shape", "size", "ndim", "dtype"):
                base = self._infer(expr.value)
                if base.kind == "array":
                    return _NONARRAY
            return _UNKNOWN
        if isinstance(expr, ast.Compare):
            return _UNKNOWN  # could be a boolean mask array
        if isinstance(expr, ast.IfExp):
            a, b = self._infer(expr.body), self._infer(expr.orelse)
            return a if a == b else _UNKNOWN
        return _UNKNOWN


def check_bodies(project: ProjectIndex, cindex: ContractIndex) -> list[Finding]:
    findings: list[Finding] = []
    for mod in project.modules.values():
        for fn in mod.functions.values():
            info = cindex.get(fn.fq)
            if info is None:
                continue
            _BodyChecker(project, mod, cindex, info, findings).run()
    return findings


# ----------------------------------------------------------------------
# the symbolic shape table (--format=json)
# ----------------------------------------------------------------------
def shape_table(cindex: ContractIndex) -> list[dict[str, object]]:
    """Per-function symbolic shape/dtype summary for contracted functions."""
    table: list[dict[str, object]] = []
    for fq, info in sorted(cindex.by_fq.items()):
        if not info.has_contract:
            continue
        entry: dict[str, object] = {
            "function": fq,
            "path": info.fn.path.replace("\\", "/"),
            "line": info.fn.node.lineno,
        }
        if info.shapes_spec is not None:
            entry["shapes"] = info.shapes_spec
        if info.shape is not None:
            entry["args"] = [
                {"dims": list(a.dims), "per_item": a.per_item}
                for a in info.shape.args
            ]
            entry["out"] = (
                list(info.shape.out_dims) if info.shape.out_dims is not None else None
            )
            entry["mode"] = "ragged" if info.is_ragged else "plain"
        if info.dtype_args is not None:
            entry["dtypes"] = {
                "args": list(info.dtype_args),
                "out": info.dtype_out,
            }
        if info.shape_params is not None:
            entry["params"] = info.shape_params
        if info.notes:
            entry["notes"] = info.notes
        table.append(entry)
    return table


def check_project(
    project: ProjectIndex, cindex: ContractIndex
) -> tuple[list[Finding], list[dict[str, object]]]:
    """All S-rules; returns (findings, parity records)."""
    findings = check_coverage(cindex)
    parity_findings, parity = check_parity(cindex)
    findings.extend(parity_findings)
    findings.extend(check_bodies(project, cindex))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, parity
