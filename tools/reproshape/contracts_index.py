"""Contract extraction: decorators + annotations -> per-function facts.

For every function in the :class:`tools.reproflow.project.ProjectIndex`
this module extracts the ``@contracts.shapes(...)`` /
``@contracts.dtypes(...)`` decorators (parsed through the *runtime's
own* grammar, :func:`repro.core.contracts.parse_shape_spec`, so static
and dynamic semantics cannot drift), classifies positional parameters
by annotation (ndarray-like, sequence-of-arrays, or non-array), and
aligns contract arg specs to parameters the same way the runtime
matcher consumes positional arguments: plain specs bind to the next
array-like positional, bracketed per-item specs to the next
sequence-of-arrays positional, everything else is skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.core.contracts import ShapeSpec, parse_shape_spec

from tools.reproflow.project import FunctionInfo, ProjectIndex, _dotted

__all__ = [
    "ContractInfo",
    "ContractIndex",
    "classify_annotation",
]

#: Annotation leaf names treated as "this parameter is an ndarray".
ARRAY_ANNOTATIONS = frozenset(
    {
        "ndarray",
        "NDArray",
        "ComplexIQ",
        "FloatArray",
        "BitArray",
        "ChipArray",
        "IntArray",
    }
)

#: Generic containers whose element type decides sequence-of-arrays.
_SEQ_BASES = frozenset({"Sequence", "list", "List", "tuple", "Tuple"})


def _leaf(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def classify_annotation(node: ast.expr | None) -> str:
    """``"array"`` | ``"seq"`` (sequence of arrays) | ``"other"`` | ``"unknown"``.

    ``unknown`` means unannotated — the analyzer cannot tell whether
    the runtime matcher would consume the argument, so alignment (and
    every check that depends on it) is skipped for that function.
    """
    if node is None:
        return "unknown"
    if isinstance(node, (ast.Name, ast.Attribute)):
        return "array" if _leaf(node) in ARRAY_ANNOTATIONS else "other"
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            text = node.value
            return (
                "array"
                if any(name in text for name in ARRAY_ANNOTATIONS)
                else "other"
            )
        return "other"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        kinds = {classify_annotation(node.left), classify_annotation(node.right)}
        if "seq" in kinds:
            return "seq"
        if "array" in kinds:
            return "array"
        return "other"
    if isinstance(node, ast.Subscript):
        base = _leaf(node.value)
        if base == "Optional":
            return classify_annotation(node.slice)
        if base == "NDArray":
            return "array"
        if base in _SEQ_BASES:
            sl = node.slice
            elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
            inner = {classify_annotation(e) for e in elts}
            return "seq" if "array" in inner or "seq" in inner else "other"
        return "other"
    return "other"


def _dtype_name(node: ast.expr) -> str | None:
    """``np.uint8`` -> ``"uint8"`` (or ``None`` when unrecognizable)."""
    name = _leaf(node)
    return name or None


@dataclass
class ContractInfo:
    """Everything reproshape knows about one function's contracts."""

    fn: FunctionInfo
    #: positional params (posonly + regular, minus self/cls) with their
    #: annotation classification, in call order
    params: list[tuple[str, str]] = field(default_factory=list)

    shapes_spec: str | None = None
    shape: ShapeSpec | None = None
    shapes_line: int = 0

    #: positional dtype names from ``@contracts.dtypes`` (None entries
    #: are unrecognizable expressions, individually skipped)
    dtype_args: tuple[str | None, ...] | None = None
    dtype_out: str | None = None
    dtypes_line: int = 0

    #: param name bound to each shape arg spec (None = alignment failed)
    shape_params: list[str] | None = None
    #: param name bound to each dtype entry (None = alignment failed)
    dtype_params: list[str] | None = None
    #: human-readable reasons alignment/checking was skipped
    notes: list[str] = field(default_factory=list)

    @property
    def has_contract(self) -> bool:
        return self.shape is not None or self.dtype_args is not None

    @property
    def is_ragged(self) -> bool:
        return self.shape is not None and any(a.per_item for a in self.shape.args)

    def array_param_names(self) -> list[str]:
        return [name for name, kind in self.params if kind in ("array", "seq")]


def _is_contract_decorator(dec: ast.expr, kind: str) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    dotted = _dotted(dec.func)
    parts = dotted.split(".")
    if parts[-1] != kind:
        return False
    return len(parts) == 1 or parts[-2] == "contracts"


def _extract(fn: FunctionInfo, errors: list[tuple[str, int, str]]) -> ContractInfo:
    info = ContractInfo(fn=fn)
    args = fn.node.args
    positional = [*args.posonlyargs, *args.args]
    if fn.cls is not None and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    info.params = [(a.arg, classify_annotation(a.annotation)) for a in positional]

    for dec in fn.node.decorator_list:
        if _is_contract_decorator(dec, "shapes"):
            assert isinstance(dec, ast.Call)
            info.shapes_line = dec.lineno
            if len(dec.args) == 1 and isinstance(dec.args[0], ast.Constant) and isinstance(dec.args[0].value, str):
                info.shapes_spec = dec.args[0].value
                try:
                    info.shape = parse_shape_spec(info.shapes_spec)
                except ValueError as exc:
                    errors.append((fn.path, dec.lineno, str(exc)))
            else:
                info.notes.append("shapes spec is not a string literal")
        elif _is_contract_decorator(dec, "dtypes"):
            assert isinstance(dec, ast.Call)
            info.dtypes_line = dec.lineno
            info.dtype_args = tuple(_dtype_name(a) for a in dec.args)
            for kw in dec.keywords:
                if kw.arg == "out":
                    info.dtype_out = _dtype_name(kw.value)

    _align(info)
    return info


def _align(info: ContractInfo) -> None:
    """Bind contract entries to parameters, runtime-matcher style."""
    if info.shape is not None:
        bound: list[str] = []
        cursor = 0
        ok = True
        for spec in info.shape.args:
            want = ("seq", "array") if spec.per_item else ("array",)
            while cursor < len(info.params) and info.params[cursor][1] not in want:
                if info.params[cursor][1] == "unknown":
                    ok = False
                    info.notes.append(
                        f"parameter {info.params[cursor][0]!r} is unannotated; "
                        "cannot align shapes contract"
                    )
                    break
                cursor += 1
            if not ok or cursor >= len(info.params):
                ok = False
                break
            bound.append(info.params[cursor][0])
            cursor += 1
        if ok:
            info.shape_params = bound
        elif not info.notes:
            info.notes.append(
                "shapes contract declares more array arguments than "
                "array-annotated parameters"
            )
    if info.dtype_args is not None:
        arrays = [name for name, kind in info.params if kind == "array"]
        if len(arrays) >= len(info.dtype_args):
            info.dtype_params = arrays[: len(info.dtype_args)]
        else:
            info.notes.append(
                "dtypes contract declares more array arguments than "
                "array-annotated parameters"
            )


class ContractIndex:
    """Per-function contract facts over a whole :class:`ProjectIndex`."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self.errors: list[tuple[str, int, str]] = []
        self.by_fq: dict[str, ContractInfo] = {}
        for fq, fn in project.functions.items():
            self.by_fq[fq] = _extract(fn, self.errors)

    def get(self, fq: str | None) -> ContractInfo | None:
        return self.by_fq.get(fq) if fq else None
