"""Finding model, rule catalog, pragmas, and baselines for reproshape."""

from __future__ import annotations

from dataclasses import dataclass

from tools.analysis_common import (
    BaselineBase,
    finding_fingerprint,
    is_code_suppressed,
    parse_suppressions,
)

__all__ = [
    "RULES",
    "Finding",
    "Baseline",
    "suppressions",
    "is_suppressed",
]

#: code -> one-line description (shown by ``--list-rules``; the full
#: catalog with rationale lives in docs/STATIC_ANALYSIS.md).
RULES: dict[str, str] = {
    "S001": "call-site array shape incompatible with the callee's shapes contract",
    "S002": "call-site dtype mismatch or implicit narrow-to-wide widening",
    "S003": "batch kernel contract is not the scalar twin's contract lifted over the batch axis",
    "S004": "public PHY/matching entry point lacks a shapes/dtypes contract",
    "S005": "contract-derivable shape error inside a function body",
}


@dataclass(frozen=True)
class Finding:
    """One rule hit: location, code, message, enclosing symbol."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: dotted module + qualname of the enclosing function ("" at module
    #: scope); part of the baseline fingerprint.
    symbol: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files."""
        return finding_fingerprint(self.path, self.code, self.symbol, self.message)

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path.replace("\\", "/"),
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }


def suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-level ``# reproshape: disable`` pragmas."""
    return parse_suppressions(source, "reproshape")


def is_suppressed(
    finding: Finding, per_line: dict[int, set[str]], per_file: set[str]
) -> bool:
    return is_code_suppressed(finding.code, finding.line, per_line, per_file)


class Baseline(BaselineBase):
    """Acknowledged reproshape findings, keyed by fingerprint."""

    TOOL = "reproshape"
