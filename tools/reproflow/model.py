"""Finding model, rule catalog, pragma suppression, and baselines.

reproflow mirrors reprolint's ergonomics (stable rule codes, per-line
``# reproflow: disable=U001`` pragmas, ``--select``) and adds the
baseline workflow: a JSON file of *fingerprints* for findings that are
acknowledged but not yet fixed.  Fingerprints hash the file, rule,
enclosing symbol, and message — not the line number — so unrelated
edits to a file do not invalidate the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from tools.analysis_common import (
    BaselineBase,
    finding_fingerprint,
    is_code_suppressed,
    parse_suppressions,
)

__all__ = [
    "RULES",
    "Finding",
    "Baseline",
    "suppressions",
    "is_suppressed",
]

#: code -> one-line description (shown by ``--list-rules``; the full
#: catalog with rationale lives in docs/STATIC_ANALYSIS.md).
RULES: dict[str, str] = {
    "U001": "arithmetic/comparison/assignment mixes incompatible physical units",
    "U002": "log-domain (dB/dBm) quantity mixed with a linear power or voltage",
    "U003": "call argument unit does not match the callee parameter's unit",
    "U004": "unit-ambiguous public parameter; add a unit suffix or units annotation",
    "F001": "worker-reachable function mutates a module-level global",
    "F002": "worker-reachable function writes wavecache state outside its locked API",
    "B001": "compiled bytecode tracked by git; remove and gitignore it",
    "B002": "packaging metadata (egg-info) tracked by git; remove and gitignore it",
}


@dataclass(frozen=True)
class Finding:
    """One rule hit: location, code, message, enclosing symbol."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: dotted module + qualname of the enclosing function ("" at module
    #: scope); part of the baseline fingerprint.
    symbol: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files."""
        return finding_fingerprint(self.path, self.code, self.symbol, self.message)

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path.replace("\\", "/"),
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }


# ----------------------------------------------------------------------
# pragma suppression (shared grammar, reproflow prefix)
# ----------------------------------------------------------------------
def suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-level ``# reproflow: disable`` pragmas.

    ``# reproflow: disable=U001,F001`` suppresses on that line;
    ``# reproflow: disable-file=U003`` within the first ten lines
    suppresses for the whole file; ``disable=all`` matches every code.
    """
    return parse_suppressions(source, "reproflow")


def is_suppressed(
    finding: Finding, per_line: dict[int, set[str]], per_file: set[str]
) -> bool:
    return is_code_suppressed(finding.code, finding.line, per_line, per_file)


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------
class Baseline(BaselineBase):
    """Acknowledged reproflow findings, keyed by fingerprint.

    Format and semantics live in :class:`tools.analysis_common.BaselineBase`;
    only the tool identity (used in load-error messages) is bound here.
    """

    TOOL = "reproflow"
