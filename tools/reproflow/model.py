"""Finding model, rule catalog, pragma suppression, and baselines.

reproflow mirrors reprolint's ergonomics (stable rule codes, per-line
``# reproflow: disable=U001`` pragmas, ``--select``) and adds the
baseline workflow: a JSON file of *fingerprints* for findings that are
acknowledged but not yet fixed.  Fingerprints hash the file, rule,
enclosing symbol, and message — not the line number — so unrelated
edits to a file do not invalidate the baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "RULES",
    "Finding",
    "Baseline",
    "suppressions",
    "is_suppressed",
]

#: code -> one-line description (shown by ``--list-rules``; the full
#: catalog with rationale lives in docs/STATIC_ANALYSIS.md).
RULES: dict[str, str] = {
    "U001": "arithmetic/comparison/assignment mixes incompatible physical units",
    "U002": "log-domain (dB/dBm) quantity mixed with a linear power or voltage",
    "U003": "call argument unit does not match the callee parameter's unit",
    "U004": "unit-ambiguous public parameter; add a unit suffix or units annotation",
    "F001": "worker-reachable function mutates a module-level global",
    "F002": "worker-reachable function writes wavecache state outside its locked API",
    "B001": "compiled bytecode tracked by git; remove and gitignore it",
    "B002": "packaging metadata (egg-info) tracked by git; remove and gitignore it",
}


@dataclass(frozen=True)
class Finding:
    """One rule hit: location, code, message, enclosing symbol."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: dotted module + qualname of the enclosing function ("" at module
    #: scope); part of the baseline fingerprint.
    symbol: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files."""
        norm_path = self.path.replace("\\", "/")
        raw = f"{norm_path}::{self.code}::{self.symbol}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path.replace("\\", "/"),
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }


# ----------------------------------------------------------------------
# pragma suppression (same grammar as reprolint, different prefix)
# ----------------------------------------------------------------------
def suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-level ``# reproflow: disable`` pragmas.

    ``# reproflow: disable=U001,F001`` suppresses on that line;
    ``# reproflow: disable-file=U003`` within the first ten lines
    suppresses for the whole file; ``disable=all`` matches every code.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "# reproflow:" not in line:
            continue
        _, _, tail = line.partition("# reproflow:")
        for clause in tail.strip().split():
            if clause.startswith("disable-file="):
                if lineno <= 10:
                    codes = clause.removeprefix("disable-file=")
                    per_file.update(c.strip() for c in codes.split(",") if c.strip())
            elif clause.startswith("disable="):
                codes = clause.removeprefix("disable=")
                per_line.setdefault(lineno, set()).update(
                    c.strip() for c in codes.split(",") if c.strip()
                )
    return per_line, per_file


def is_suppressed(
    finding: Finding, per_line: dict[int, set[str]], per_file: set[str]
) -> bool:
    for codes in (per_file, per_line.get(finding.line, set())):
        if "all" in codes or finding.code in codes:
            return True
    return False


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------
@dataclass
class Baseline:
    """Acknowledged findings, keyed by fingerprint.

    The value stored per fingerprint is a short human-readable locator
    (``path:code:symbol``) so reviewers can audit the file without
    recomputing hashes.
    """

    fingerprints: dict[str, str] = field(default_factory=dict)

    VERSION = 1

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or doc.get("version") != cls.VERSION:
            raise ValueError(
                f"{path}: not a reproflow baseline (want version={cls.VERSION})"
            )
        fps = doc.get("fingerprints", {})
        if not isinstance(fps, dict):
            raise ValueError(f"{path}: 'fingerprints' must be an object")
        return cls(fingerprints={str(k): str(v) for k, v in fps.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        fps = {
            f.fingerprint(): f"{f.path.replace(chr(92), '/')}:{f.code}:{f.symbol}"
            for f in findings
        }
        return cls(fingerprints=fps)

    def write(self, path: str) -> None:
        doc = {
            "version": self.VERSION,
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined) findings."""
        new: list[Finding] = []
        old: list[Finding] = []
        for f in findings:
            (old if f.fingerprint() in self.fingerprints else new).append(f)
        return new, old
