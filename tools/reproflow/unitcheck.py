"""U-series rules: unit dataflow within and across functions.

U001  arithmetic / comparison / assignment mixing incompatible units
U002  log-domain (dB/dBm) quantity combined with linear power/voltage
U003  call argument unit vs. callee parameter unit
U004  unit-ambiguous public parameter / dataclass field

Inference is flow-through: parameters seed local units (annotation
first, name convention second), assignments propagate, and every
expression is inferred exactly once so a single bad subexpression
yields a single finding.  Unknown absorbs — if either operand's unit
cannot be established, no finding is produced.
"""

from __future__ import annotations

import ast

from tools.reproflow.model import Finding
from tools.reproflow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    local_instance_map,
    resolve_call,
    unit_from_annotation,
)
from tools.reproflow.unitlattice import (
    LITERAL,
    UnitTok,
    combine_additive,
    seed_from_name,
)

__all__ = ["check_units", "check_ambiguous_params", "STRICT_UNIT_DIRS"]

#: Path fragments where U004 (ambiguous public parameters) applies.
STRICT_UNIT_DIRS: tuple[str, ...] = (
    "src/repro/phy/",
    "src/repro/core/",
    "src/repro/channel/",
    "src/repro/sim/",
    "experiments/params.py",
)

#: Final name components that demand a unit when used for a number.
AMBIGUOUS_BASES = frozenset(
    {
        "rate",
        "freq",
        "frequency",
        "duration",
        "period",
        "interval",
        "delay",
        "size",
        "time",
        "bandwidth",
        "wavelength",
    }
)

#: builtins that preserve the unit of their first argument
_PASSTHROUGH_NAMES = frozenset({"int", "float", "round", "abs"})
#: numpy attribute calls that preserve the unit of their first argument
_PASSTHROUGH_ATTRS = frozenset(
    {"floor", "ceil", "round", "rint", "abs", "absolute", "asarray", "copy"}
)

_ADDITIVE_OPS: dict[type, str] = {ast.Add: "+", ast.Sub: "-", ast.Mod: "%"}
_ORDER_CMPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _is_known(unit: UnitTok | None) -> bool:
    return unit is not None and unit is not LITERAL


class _FunctionUnits(ast.NodeVisitor):
    """Infer units through one function body and emit U001–U003."""

    def __init__(
        self,
        index: ProjectIndex,
        mod: ModuleInfo,
        fn: FunctionInfo,
        findings: list[Finding],
    ) -> None:
        self.index = index
        self.mod = mod
        self.fn = fn
        self.findings = findings
        self.local_units: dict[str, UnitTok | None] = dict(fn.param_units)
        self.local_instances = local_instance_map(index, mod, fn)
        #: fields of the enclosing class, for ``self.x`` inference
        self.self_fields: ClassInfo | None = (
            index.classes.get(f"{fn.module}.{fn.cls}") if fn.cls else None
        )

    # ------------------------------------------------------------ report
    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.mod.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
                symbol=self.fn.fq,
            )
        )

    def _problem(self, node: ast.AST, problem: str | None, lu: UnitTok, ru: UnitTok, op: str) -> None:
        if problem == "mismatch":
            self._report(
                node,
                "U001",
                f"'{op}' combines {lu.symbol} with {ru.symbol}",
            )
        elif problem == "dbm-sum":
            self._report(
                node,
                "U001",
                "adding two absolute dBm powers; convert to linear (mW) first",
            )
        elif problem == "db-linear":
            self._report(
                node,
                "U002",
                f"'{op}' mixes log-domain {lu.symbol} with linear {ru.symbol}",
            )

    # ------------------------------------------------------------- infer
    def infer(self, node: ast.expr | None) -> UnitTok | None:
        if node is None:
            return None
        method = getattr(self, f"_infer_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # default: infer children, result unknown
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child)
        return None

    def _infer_Constant(self, node: ast.Constant) -> UnitTok | None:
        if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
            return LITERAL
        return None

    def _infer_Name(self, node: ast.Name) -> UnitTok | None:
        if node.id in self.local_units:
            return self.local_units[node.id]
        return seed_from_name(node.id)

    def _infer_Attribute(self, node: ast.Attribute) -> UnitTok | None:
        base = node.value
        if isinstance(base, ast.Name):
            cls_fq = self.local_instances.get(base.id) or self.mod.module_instances.get(
                base.id
            )
            ci = self.index.classes.get(cls_fq) if cls_fq else None
            if ci is not None:
                unit = ci.field_unit(node.attr)
                if unit is not None:
                    return unit
                # property with an annotated/seeded return
                prop = self.index.functions.get(f"{ci.fq}.{node.attr}")
                if prop is not None and prop.return_unit is not None:
                    return prop.return_unit
        else:
            self.infer(base)
        return seed_from_name(node.attr)

    def _infer_UnaryOp(self, node: ast.UnaryOp) -> UnitTok | None:
        return self.infer(node.operand)

    def _infer_BinOp(self, node: ast.BinOp) -> UnitTok | None:
        lu = self.infer(node.left)
        ru = self.infer(node.right)
        op = _ADDITIVE_OPS.get(type(node.op))
        if op is None:
            return None  # * / // ** change dimension; result unknown
        result, problem = combine_additive(lu, ru, op)
        if problem is not None and _is_known(lu) and _is_known(ru):
            self._problem(node, problem, lu, ru, op)
        return result

    def _infer_Compare(self, node: ast.Compare) -> UnitTok | None:
        left_unit = self.infer(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            right_unit = self.infer(comparator)
            if isinstance(op, _ORDER_CMPS) and _is_known(left_unit) and _is_known(
                right_unit
            ):
                _, problem = combine_additive(left_unit, right_unit, "compare")
                if problem is not None:
                    self._problem(node, problem, left_unit, right_unit, "compare")
            left_unit = right_unit
        return None

    def _infer_BoolOp(self, node: ast.BoolOp) -> UnitTok | None:
        for value in node.values:
            self.infer(value)
        return None

    def _infer_IfExp(self, node: ast.IfExp) -> UnitTok | None:
        self.infer(node.test)
        body = self.infer(node.body)
        orelse = self.infer(node.orelse)
        if body == orelse:
            return body
        if body is LITERAL:
            return orelse
        if orelse is LITERAL:
            return body
        return None

    def _infer_Subscript(self, node: ast.Subscript) -> UnitTok | None:
        unit = self.infer(node.value)
        self.infer(node.slice)
        return unit

    def _infer_Starred(self, node: ast.Starred) -> UnitTok | None:
        return self.infer(node.value)

    def _infer_Lambda(self, node: ast.Lambda) -> UnitTok | None:
        self.infer(node.body)
        return None

    def _infer_Call(self, node: ast.Call) -> UnitTok | None:
        callee = resolve_call(self.index, self.mod, self.fn, node, self.local_instances)
        arg_units = self._check_call_args(node, callee)
        if callee is not None:
            return callee.return_unit
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _PASSTHROUGH_NAMES and arg_units:
                return arg_units[0]
            if func.id in {"min", "max"} and arg_units:
                known = {u for u in arg_units if _is_known(u)}
                if len(known) == 1 and all(u is not None for u in arg_units):
                    return known.pop()
                return None
            # constructor of a project dataclass handled via _check_call_args
            fq = self.index.resolve_symbol(self.mod, func.id)
            if fq is not None and fq in self.index.classes:
                return None
        elif isinstance(func, ast.Attribute):
            if func.attr in _PASSTHROUGH_ATTRS and arg_units:
                return arg_units[0]
        return None

    # --------------------------------------------------- U003 call check
    def _callee_params(
        self, node: ast.Call, callee: FunctionInfo | None
    ) -> tuple[list[tuple[str, UnitTok | None]], dict[str, UnitTok | None], bool] | None:
        """(positional params, name->unit, has_vararg) for the call."""
        if callee is not None:
            order = list(callee.param_order)
            if order and order[0] in {"self", "cls"}:
                order = order[1:]
            positional = [(name, callee.param_units.get(name)) for name in order]
            return positional, dict(callee.param_units), callee.has_vararg
        # dataclass constructor without an explicit __init__
        func = node.func
        dotted = (
            func.id
            if isinstance(func, ast.Name)
            else (func.attr if isinstance(func, ast.Attribute) else "")
        )
        fq = self.index.resolve_symbol(self.mod, dotted) if dotted else None
        ci = self.index.classes.get(fq) if fq else None
        if ci is not None and ci.is_dataclass and "__init__" not in ci.methods:
            return list(ci.fields), dict(ci.fields), False
        return None

    def _check_call_args(
        self, node: ast.Call, callee: FunctionInfo | None
    ) -> list[UnitTok | None]:
        signature = self._callee_params(node, callee)
        if callee is not None:
            display = callee.qualname
        else:
            func = node.func
            display = (
                func.id
                if isinstance(func, ast.Name)
                else (func.attr if isinstance(func, ast.Attribute) else "")
            )
        arg_units: list[UnitTok | None] = []
        positional = signature[0] if signature else []
        by_name = signature[1] if signature else {}
        has_vararg = signature[2] if signature else True
        saw_star = False
        for i, arg in enumerate(node.args):
            unit = self.infer(arg)
            arg_units.append(unit)
            if isinstance(arg, ast.Starred):
                saw_star = True
                continue
            if signature and not saw_star and i < len(positional):
                pname, punit = positional[i]
                self._flag_arg(node, arg, display, pname, punit, unit)
            elif signature and not saw_star and not has_vararg:
                pass  # too many args: a runtime error, not a unit problem
        for kw in node.keywords:
            unit = self.infer(kw.value)
            if kw.arg is None or not signature:
                continue
            punit = by_name.get(kw.arg)
            self._flag_arg(node, kw.value, display, kw.arg, punit, unit)
        return arg_units

    def _flag_arg(
        self,
        call: ast.Call,
        arg: ast.expr,
        callee_name: str,
        pname: str,
        punit: UnitTok | None,
        unit: UnitTok | None,
    ) -> None:
        if not (_is_known(punit) and _is_known(unit)):
            return
        if punit == unit:
            return
        where = callee_name or "callee"
        self._report(
            arg,
            "U003",
            f"argument '{pname}' of {where}() expects {punit.symbol}, got {unit.symbol}",
        )

    # --------------------------------------------------------- statements
    def check(self) -> None:
        self._stmts(self.fn.node.body)

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are checked as their own functions
        if isinstance(stmt, ast.Assign):
            rhs = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, rhs, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            declared = unit_from_annotation(stmt.annotation)
            rhs = self.infer(stmt.value) if stmt.value is not None else None
            if isinstance(stmt.target, ast.Name):
                unit = declared or seed_from_name(stmt.target.id)
                if _is_known(unit) and _is_known(rhs) and unit != rhs:
                    self._report(
                        stmt,
                        "U001",
                        f"assigns {rhs.symbol} value to "
                        f"'{stmt.target.id}' declared as {unit.symbol}",
                    )
                self.local_units[stmt.target.id] = unit if _is_known(unit) else rhs
        elif isinstance(stmt, ast.AugAssign):
            target_unit = (
                self.infer(stmt.target)
                if isinstance(stmt.target, (ast.Name, ast.Attribute, ast.Subscript))
                else None
            )
            rhs = self.infer(stmt.value)
            op = _ADDITIVE_OPS.get(type(stmt.op))
            if op is not None:
                result, problem = combine_additive(target_unit, rhs, op)
                if problem is not None and _is_known(target_unit) and _is_known(rhs):
                    self._problem(stmt, problem, target_unit, rhs, op + "=")
                if isinstance(stmt.target, ast.Name) and _is_known(result):
                    self.local_units[stmt.target.id] = result
        elif isinstance(stmt, ast.Return):
            rhs = self.infer(stmt.value)
            expected = self.fn.return_unit
            if _is_known(expected) and _is_known(rhs) and expected != rhs:
                self._report(
                    stmt,
                    "U001",
                    f"returns {rhs.symbol} from a function whose "
                    f"return is {expected.symbol}",
                )
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.infer(stmt.iter)
            for name in _names_in(stmt.target):
                self.local_units.pop(name, None)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    for name in _names_in(item.optional_vars):
                        self.local_units.pop(name, None)
            self._stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Assert):
            self.infer(stmt.test)
        elif isinstance(stmt, ast.Raise):
            self.infer(stmt.exc)
        elif isinstance(stmt, (ast.Delete, ast.Global, ast.Nonlocal, ast.Pass)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)

    def _bind(self, target: ast.expr, rhs: UnitTok | None, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            declared = seed_from_name(target.id)
            if _is_known(declared) and _is_known(rhs) and declared != rhs:
                _, problem = combine_additive(declared, rhs, "=")
                kind = "U002" if problem == "db-linear" else "U001"
                detail = (
                    f"assigns {rhs.symbol} value to '{target.id}', "
                    f"which names a {declared.symbol} quantity"
                )
                self._report(stmt, kind, detail)
                self.local_units[target.id] = rhs
            elif _is_known(rhs):
                self.local_units[target.id] = rhs
            elif rhs is LITERAL:
                self.local_units.pop(target.id, None)  # fall back to name seed
            else:
                self.local_units[target.id] = None
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id in {
                "self",
                "cls",
            } and self.self_fields is not None:
                declared = self.self_fields.field_unit(target.attr)
                if _is_known(declared) and _is_known(rhs) and declared != rhs:
                    self._report(
                        stmt,
                        "U001",
                        f"assigns {rhs.symbol} value to field "
                        f"'{target.attr}' declared as {declared.symbol}",
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for name in _names_in(target):
                self.local_units.pop(name, None)


def _names_in(target: ast.expr) -> list[str]:
    return [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def check_units(index: ProjectIndex) -> list[Finding]:
    """Run U001–U003 over every function in the index."""
    findings: list[Finding] = []
    for mod in index.modules.values():
        for fn in mod.functions.values():
            _FunctionUnits(index, mod, fn, findings).check()
    return findings


def _in_strict_dirs(path: str, strict_dirs: tuple[str, ...]) -> bool:
    norm = path.replace("\\", "/")
    return any(fragment in norm for fragment in strict_dirs)


def _numeric_annotation(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in {"float", "int"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"float", "int"}
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text in {"float", "int"} or text.startswith(("float |", "int |"))
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _numeric_annotation(node.left) or _numeric_annotation(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        if name == "Optional":
            return _numeric_annotation(node.slice)
    return False


def _ambiguous(name: str) -> bool:
    return name.rsplit("_", 1)[-1].lower() in AMBIGUOUS_BASES


def check_ambiguous_params(
    index: ProjectIndex, strict_dirs: tuple[str, ...] | None = None
) -> list[Finding]:
    """U004: public numeric params/fields whose name demands a unit."""
    dirs = STRICT_UNIT_DIRS if strict_dirs is None else strict_dirs
    findings: list[Finding] = []
    for mod in index.modules.values():
        if not _in_strict_dirs(mod.path, dirs):
            continue
        for fn in mod.functions.values():
            name = fn.qualname.rsplit(".", 1)[-1]
            if name.startswith("_") and name != "__init__":
                continue
            if fn.cls is not None and fn.cls.startswith("_"):
                continue
            args = fn.node.args
            all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            for a in all_args:
                if a.arg in {"self", "cls"} or a.arg.startswith("_"):
                    continue
                if fn.param_units.get(a.arg) is not None:
                    continue
                if not _numeric_annotation(a.annotation):
                    continue
                if not _ambiguous(a.arg):
                    continue
                findings.append(
                    Finding(
                        path=mod.path,
                        line=a.lineno,
                        col=a.col_offset + 1,
                        code="U004",
                        message=(
                            f"parameter '{a.arg}' of {fn.qualname}() is "
                            "unit-ambiguous; add a unit suffix or a "
                            "repro.types.units annotation"
                        ),
                        symbol=fn.fq,
                    )
                )
        for ci in mod.classes.values():
            if ci.name.startswith("_"):
                continue
            for item in ci.node.body:
                if not (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                ):
                    continue
                fname = item.target.id
                if fname.startswith("_"):
                    continue
                if ci.field_unit(fname) is not None:
                    continue
                if not _numeric_annotation(item.annotation):
                    continue
                if not _ambiguous(fname):
                    continue
                findings.append(
                    Finding(
                        path=mod.path,
                        line=item.lineno,
                        col=item.col_offset + 1,
                        code="U004",
                        message=(
                            f"field '{fname}' of {ci.name} is unit-ambiguous; "
                            "add a unit suffix or a repro.types.units annotation"
                        ),
                        symbol=ci.fq,
                    )
                )
    return findings
