"""F-series rules: purity / fork-safety of worker-reachable code.

The parallel surfaces — :class:`repro.sim.runner.MonteCarlo` chunk
workers, the CLI ``run-all`` process-pool fan-out, and the experiment
``@implements`` entry points it dispatches — must stay deterministic
under fork/spawn.  That requires every function reachable from those
roots to avoid mutating module-level state:

F001  worker-reachable function mutates a module-level global
F002  worker-reachable function writes wavecache state outside its
      locked API (``get_or_create`` is sanctioned; ``put``/``clear``/
      ``clear_caches``/``register_functools_cache`` are not)

Roots are detected statically: the callable handed to ``pool.submit``
/ ``pool.map``, the function passed to ``MonteCarlo(...).run``, and
any function decorated with ``@implements`` (the experiment-registry
hook ``run-all`` fans out over).
"""

from __future__ import annotations

import ast
from collections import deque

from tools.reproflow.model import Finding
from tools.reproflow.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    walk_function_body,
)

__all__ = ["worker_roots", "reachable_functions", "check_purity"]

WAVECACHE_MODULE = "repro.core.wavecache"

#: wavecache entry points that rewrite shared cache state.
_WAVECACHE_WRITERS = frozenset(
    {"clear_caches", "register_functools_cache", "_register_phy_caches"}
)

#: LruCache methods that mutate cache contents (``get``/``stats``/
#: ``get_or_create`` are the sanctioned read/compute path).
_LRU_MUTATORS = frozenset({"put", "clear"})

#: method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "put",
        "move_to_end",
    }
)


def worker_roots(index: ProjectIndex) -> set[str]:
    """Fully-qualified names of all worker entry points."""
    roots: set[str] = set()
    for fn in index.functions.values():
        roots.update(t for t in fn.spawn_targets if t in index.functions)
        if any(d.split(".")[-1] == "implements" for d in fn.decorators):
            roots.add(fn.fq)
    return roots


def reachable_functions(index: ProjectIndex, roots: set[str]) -> set[str]:
    """BFS closure over call + bare-reference edges."""
    seen: set[str] = set()
    queue = deque(sorted(roots))
    while queue:
        fq = queue.popleft()
        if fq in seen or fq not in index.functions:
            continue
        seen.add(fq)
        fn = index.functions[fq]
        for edge in (*fn.calls, *fn.references, *fn.spawn_targets):
            if edge not in seen:
                queue.append(edge)
    return seen


def _local_bindings(fn: FunctionInfo) -> set[str]:
    """Names bound inside the function (they shadow module globals)."""
    bound: set[str] = set(fn.param_units)
    args = fn.node.args
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    globals_declared: set[str] = set()
    for node in walk_function_body(fn.node):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if isinstance(t, ast.Name):
                    bound.add(t.id)
                elif isinstance(t, (ast.Tuple, ast.List, ast.Starred)):
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name):
                            bound.add(n.id)
        elif isinstance(node, ast.For):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    bound.add(n.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for n in ast.walk(node.optional_vars):
                if isinstance(n, ast.Name):
                    bound.add(n.id)
        elif isinstance(node, ast.comprehension):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    bound.add(n.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound - globals_declared


def _root_name(node: ast.expr) -> str | None:
    """Leftmost name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _PurityChecker:
    def __init__(
        self,
        index: ProjectIndex,
        mod: ModuleInfo,
        fn: FunctionInfo,
        findings: list[Finding],
    ) -> None:
        self.index = index
        self.mod = mod
        self.fn = fn
        self.findings = findings
        self.locals = _local_bindings(fn)
        self.globals_declared: set[str] = {
            name
            for node in walk_function_body(fn.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.mod.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
                symbol=self.fn.fq,
            )
        )

    def _is_module_global(self, name: str | None) -> bool:
        """True when ``name`` denotes shared module-level state."""
        if name is None or name in self.locals:
            return False
        if name in self.mod.module_level_names:
            return True
        # an imported *project* module: mutating its attributes is just
        # as much a cross-process hazard as mutating our own globals
        target = self.mod.imports.get(name)
        return target is not None and target in self.index.modules

    def _wavecache_target(self, name: str | None) -> bool:
        """Does ``name`` refer to the wavecache module or an LruCache?"""
        if name is None:
            return False
        target = self.mod.imports.get(name)
        if target == WAVECACHE_MODULE:
            return True
        cls_fq = self.mod.module_instances.get(name)
        return cls_fq == f"{WAVECACHE_MODULE}.LruCache"

    # ------------------------------------------------------------- check
    def check(self) -> None:
        if self.mod.name == WAVECACHE_MODULE:
            return  # the locked API itself
        for node in walk_function_body(self.fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    self._check_store(node, t)
            elif isinstance(node, ast.AugAssign):
                self._check_store(node, node.target)
            elif isinstance(node, ast.Call):
                self._check_call(node)

    def _check_store(self, stmt: ast.stmt, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._report(
                    stmt,
                    "F001",
                    f"worker-reachable function rebinds module global "
                    f"'{target.id}' (declared global)",
                )
            elif isinstance(stmt, ast.AugAssign) and self._is_module_global(
                target.id
            ):
                self._report(
                    stmt,
                    "F001",
                    f"worker-reachable function mutates module-level "
                    f"'{target.id}' in place",
                )
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target.value)
            if root in {"self", "cls"}:
                return
            if self._wavecache_target(root) or (
                root is not None
                and self.mod.imports.get(root) == WAVECACHE_MODULE
            ):
                self._report(
                    stmt,
                    "F002",
                    "worker-reachable function writes wavecache state "
                    "directly; use the locked get_or_create API",
                )
            elif self._is_module_global(root):
                self._report(
                    stmt,
                    "F001",
                    f"worker-reachable function writes into module-level "
                    f"'{root}'",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(stmt, elt)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            fq = self.index.resolve_symbol(self.mod, func.id)
            if (
                fq is not None
                and fq.startswith(WAVECACHE_MODULE + ".")
                and fq.rsplit(".", 1)[-1] in _WAVECACHE_WRITERS
            ):
                self._report(
                    node,
                    "F002",
                    f"worker-reachable function calls wavecache."
                    f"{fq.rsplit('.', 1)[-1]}(), which rewrites shared "
                    "cache state",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        root = _root_name(base) if isinstance(base, (ast.Attribute, ast.Subscript)) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if root is None or root in self.locals or root in {"self", "cls"}:
            return
        # wavecache module functions / LruCache instances
        if self._wavecache_target(root) or self.mod.imports.get(root) == WAVECACHE_MODULE:
            if func.attr in _WAVECACHE_WRITERS or func.attr in _LRU_MUTATORS:
                self._report(
                    node,
                    "F002",
                    f"worker-reachable function calls {func.attr}() on "
                    "wavecache state outside its locked API",
                )
            return
        # LruCache instances defined at module scope anywhere else
        cls_fq = self.mod.module_instances.get(root)
        if cls_fq == f"{WAVECACHE_MODULE}.LruCache" and func.attr in _LRU_MUTATORS:
            self._report(
                node,
                "F002",
                f"worker-reachable function calls {func.attr}() on a "
                "module-level LruCache outside the locked API",
            )
            return
        if func.attr in _MUTATING_METHODS and self._is_module_global(root):
            self._report(
                node,
                "F001",
                f"worker-reachable function calls mutating method "
                f"'{func.attr}' on module-level '{root}'",
            )


def check_purity(
    index: ProjectIndex,
) -> tuple[list[Finding], set[str], set[str]]:
    """Run F001/F002.  Returns (findings, roots, reachable fqs)."""
    roots = worker_roots(index)
    reachable = reachable_functions(index, roots)
    findings: list[Finding] = []
    for fq in sorted(reachable):
        fn = index.functions[fq]
        mod = index.modules.get(fn.module)
        if mod is None:
            continue
        _PurityChecker(index, mod, fn, findings).check()
    return findings, roots, reachable
