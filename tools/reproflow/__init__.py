"""reproflow — cross-module units-and-purity dataflow analyzer.

Companion to :mod:`tools.reprolint`.  Where reprolint checks local,
single-file determinism/dtype idioms (R-series), reproflow builds a
whole-program view of ``src/repro``: a call graph annotated with
physical units (from :mod:`repro.types.units` annotations and naming
conventions), a unit dataflow pass (U-series), and a purity /
fork-safety pass over everything reachable from worker entry points
(F-series), plus tracked-artifact repo guards (B001 bytecode, B002 egg-info).

Public entry point: :func:`analyze_paths`.  The CLI lives in
``tools/reproflow/__main__.py`` (``python -m tools.reproflow``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from tools.analysis_common import selected_by_prefix
from tools.reproflow.bytecode import check_tracked_bytecode
from tools.reproflow.model import (
    RULES,
    Baseline,
    Finding,
    is_suppressed,
    suppressions,
)
from tools.reproflow.project import ProjectIndex
from tools.reproflow.purity import check_purity
from tools.reproflow.unitcheck import check_ambiguous_params, check_units

__all__ = [
    "RULES",
    "Finding",
    "Baseline",
    "AnalysisResult",
    "analyze_paths",
    "build_report",
]


@dataclass
class AnalysisResult:
    """Everything one run produced: findings plus the annotated graph."""

    findings: list[Finding] = field(default_factory=list)
    #: findings matched by ``--baseline`` (reported but non-fatal)
    baselined: list[Finding] = field(default_factory=list)
    index: ProjectIndex | None = None
    roots: set[str] = field(default_factory=set)
    reachable: set[str] = field(default_factory=set)
    #: (path, line, message) parse failures
    errors: list[tuple[str, int, str]] = field(default_factory=list)


def _selected(code: str, select: tuple[str, ...] | None) -> bool:
    return selected_by_prefix(code, select)


def analyze_paths(
    paths: list[str],
    *,
    select: tuple[str, ...] | None = None,
    strict_unit_dirs: tuple[str, ...] | None = None,
    baseline: Baseline | None = None,
    check_bytecode: bool = True,
    repo_root: str = ".",
) -> AnalysisResult:
    """Analyze ``paths`` and return findings + the annotated index.

    Pragma suppressions and ``select`` filtering are applied here;
    ``baseline`` (if given) partitions surviving findings into new vs.
    acknowledged.
    """
    index = ProjectIndex.build(paths)
    findings = check_units(index)
    findings.extend(check_ambiguous_params(index, strict_unit_dirs))
    purity_findings, roots, reachable = check_purity(index)
    findings.extend(purity_findings)
    if check_bytecode:
        findings.extend(check_tracked_bytecode(repo_root))

    # pragma suppression, by source file
    pragma_cache: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    kept: list[Finding] = []
    for f in findings:
        if not _selected(f.code, select):
            continue
        if f.path not in pragma_cache:
            source = ""
            for mod in index.modules.values():
                if mod.path == f.path:
                    source = mod.source
                    break
            pragma_cache[f.path] = suppressions(source)
        per_line, per_file = pragma_cache[f.path]
        if not is_suppressed(f, per_line, per_file):
            kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    result = AnalysisResult(
        index=index,
        roots=roots,
        reachable=reachable,
        errors=list(index.errors),
    )
    if baseline is not None:
        result.findings, result.baselined = baseline.split(kept)
    else:
        result.findings = kept
    return result


def build_report(result: AnalysisResult) -> dict[str, object]:
    """Machine-readable report: findings + the annotated call graph."""
    graph: dict[str, object] = {}
    index = result.index
    if index is not None:
        for fq in sorted(index.functions):
            fn = index.functions[fq]
            graph[fq] = {
                "path": fn.path.replace("\\", "/"),
                "line": fn.node.lineno,
                "params": {
                    name: (unit.symbol if unit is not None else None)
                    for name, unit in fn.param_units.items()
                },
                "return_unit": (
                    fn.return_unit.symbol if fn.return_unit is not None else None
                ),
                "calls": sorted(set(fn.calls)),
                "spawns": sorted(set(fn.spawn_targets)),
                "worker_root": fq in result.roots,
                "worker_reachable": fq in result.reachable,
            }
    by_code: dict[str, int] = {}
    for f in result.findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    return {
        "tool": "reproflow",
        "rules": RULES,
        "findings": [f.to_json() for f in result.findings],
        "baselined": [f.to_json() for f in result.baselined],
        "call_graph": graph,
        "worker_roots": sorted(result.roots),
        "summary": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "by_code": dict(sorted(by_code.items())),
            "functions": len(graph),
            "worker_reachable": len(result.reachable),
            "parse_errors": len(result.errors),
        },
    }
