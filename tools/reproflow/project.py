"""Whole-program index: modules, functions, classes, imports, call graph.

Everything downstream (unit dataflow, purity/fork-safety) consumes
this index.  Resolution is deliberately *conservative*: a call edge is
recorded only when the callee can be identified syntactically —
module-level functions, ``from``-imports, ``module.func`` attribute
calls, ``self.method`` within a class, and methods on locals assigned
from a known project-class constructor.  Unresolvable calls simply
produce no edge (a linter must under-approximate, not guess).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from tools.reproflow.unitlattice import (
    ALIAS_UNITS,
    UnitTok,
    seed_from_name,
)

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "unit_from_annotation",
    "module_name_for",
]

#: Unit suffixes trusted on *function* names (return-unit seeds).  A
#: conversion like ``bits_from_symbols`` must not inherit ``_symbols``,
#: so only value-noun suffixes are honored here.
_RETURN_SEED_SUFFIXES = (
    "_db",
    "_dbm",
    "_hz",
    "_khz",
    "_mhz",
    "_ghz",
    "_mw",
    "_w",
    "_v",
    "_mv",
    "_m",
    "_km",
    "_j",
    "_uj",
    "_kbps",
    "_mbps",
    "_us",
)

#: Marker constant names usable inline: ``Annotated[float, HZ]``.
_MARKER_NAMES: dict[str, str] = {
    "HZ": "Hertz",
    "S": "Seconds",
    "US": "Microseconds",
    "SAMPLES": "Samples",
    "CHIPS": "Chips",
    "SYMBOLS": "Symbols",
    "BITS": "Bits",
    "BYTES": "Bytes",
    "DB": "Decibels",
    "DBM": "DbmPower",
    "MILLIWATTS": "Milliwatts",
    "WATTS": "Watts",
    "VOLTS": "Volts",
    "METERS": "Meters",
    "RATIO": "Ratio",
}


def unit_from_annotation(node: ast.expr | None) -> UnitTok | None:
    """Extract a unit from an annotation expression, if any.

    Recognizes the alias names (``Hertz``, ``units.Hertz``), optional
    forms (``Hertz | None``, ``Optional[Hertz]``), and inline
    ``Annotated[float, HZ]`` with a marker constant.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return ALIAS_UNITS.get(node.id)
    if isinstance(node, ast.Attribute):
        return ALIAS_UNITS.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: cheap textual match on the alias name.
        text = node.value.strip()
        for alias, unit in ALIAS_UNITS.items():
            if text == alias or text.startswith(alias + " |") or text.endswith("." + alias):
                return unit
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return unit_from_annotation(node.left) or unit_from_annotation(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        if base_name == "Optional":
            return unit_from_annotation(node.slice)
        if base_name == "Annotated":
            sl = node.slice
            if isinstance(sl, ast.Tuple) and len(sl.elts) >= 2:
                marker = sl.elts[1]
                marker_name = marker.id if isinstance(marker, ast.Name) else (
                    marker.attr if isinstance(marker, ast.Attribute) else ""
                )
                alias = _MARKER_NAMES.get(marker_name)
                if alias is not None:
                    return ALIAS_UNITS.get(alias)
    return None


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` attribute chains -> the dotted string ('' otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def module_name_for(path: str) -> str:
    """Dotted module name by ascending while ``__init__.py`` exists."""
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    return ".".join(reversed(parts)) or stem


@dataclass
class FunctionInfo:
    """One function or method (nested defs included)."""

    module: str
    qualname: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None
    param_units: dict[str, UnitTok | None] = field(default_factory=dict)
    param_order: list[str] = field(default_factory=list)
    has_vararg: bool = False
    has_kwarg: bool = False
    return_unit: UnitTok | None = None
    decorators: list[str] = field(default_factory=list)
    #: resolved project callees (fully-qualified names)
    calls: list[str] = field(default_factory=list)
    #: project functions referenced as bare names (callback closure)
    references: list[str] = field(default_factory=list)
    #: worker-pool fan-out targets seen inside this function
    spawn_targets: list[str] = field(default_factory=list)

    @property
    def fq(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    module: str
    name: str
    node: ast.ClassDef
    path: str
    methods: set[str] = field(default_factory=set)
    is_dataclass: bool = False
    #: ordered dataclass/annotated fields -> unit
    fields: list[tuple[str, UnitTok | None]] = field(default_factory=list)

    @property
    def fq(self) -> str:
        return f"{self.module}.{self.name}"

    def field_unit(self, name: str) -> UnitTok | None:
        for fname, unit in self.fields:
            if fname == name:
                return unit
        return None


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    source: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> dotted target ("np" -> "numpy",
    #: "score_capture" -> "repro.core.matching.score_capture")
    imports: dict[str, str] = field(default_factory=dict)
    #: names bound at module scope (assignment targets)
    module_level_names: set[str] = field(default_factory=set)
    #: module-scope ``NAME = SomeClass(...)`` -> class fq
    module_instances: dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """All modules under the analyzed paths, cross-linked."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.errors: list[tuple[str, int, str]] = []

    # ------------------------------------------------------------- build
    @classmethod
    def build(cls, paths: list[str]) -> "ProjectIndex":
        index = cls()
        for path in _iter_py_files(paths):
            index._add_file(path)
        for mod in index.modules.values():
            _CallCollector(index, mod).run()
        return index

    def _add_file(self, path: str) -> None:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.errors.append((path, exc.lineno or 1, exc.msg or "syntax error"))
            return
        name = module_name_for(path)
        mod = ModuleInfo(name=name, path=path, tree=tree, source=source)
        _index_module(mod)
        self.modules[name] = mod
        for fn in mod.functions.values():
            self.functions[fn.fq] = fn
        for ci in mod.classes.values():
            self.classes[ci.fq] = ci

    # --------------------------------------------------------- resolution
    def resolve_symbol(self, mod: ModuleInfo, dotted: str) -> str | None:
        """Map a dotted name used in ``mod`` to a project fq name."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        target = mod.imports.get(head)
        if target is None:
            if head in mod.functions or head in mod.classes:
                target = f"{mod.name}.{head}"
            else:
                return None
        return f"{target}.{rest}" if rest else target

    def function_at(self, fq: str | None) -> FunctionInfo | None:
        """Function for ``fq``; class fqs resolve to ``__init__``."""
        if fq is None:
            return None
        fn = self.functions.get(fq)
        if fn is not None:
            return fn
        ci = self.classes.get(fq)
        if ci is not None:
            return self.functions.get(f"{fq}.__init__")
        return None

    def class_at(self, fq: str | None) -> ClassInfo | None:
        return self.classes.get(fq) if fq else None


# ----------------------------------------------------------------------
# module indexing
# ----------------------------------------------------------------------
def _iter_py_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs if d not in {"__pycache__", ".git"})
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        elif p.endswith(".py"):
            files.append(p)
    return files


def _function_info(
    mod: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    cls: str | None,
) -> FunctionInfo:
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    param_units: dict[str, UnitTok | None] = {}
    param_order: list[str] = []
    for a in ordered:
        unit = unit_from_annotation(a.annotation) or seed_from_name(a.arg)
        param_units[a.arg] = unit
        param_order.append(a.arg)
    for a in args.kwonlyargs:
        param_units[a.arg] = unit_from_annotation(a.annotation) or seed_from_name(a.arg)
    return_unit = unit_from_annotation(node.returns)
    if return_unit is None:
        low = node.name.lower()
        for suffix in _RETURN_SEED_SUFFIXES:
            if low.endswith(suffix) and len(low) > len(suffix):
                return_unit = seed_from_name(low)
                break
    decorators = [d for d in (_dotted(_decorator_base(dec)) for dec in node.decorator_list) if d]
    return FunctionInfo(
        module=mod.name,
        qualname=qualname,
        path=mod.path,
        node=node,
        cls=cls,
        param_units=param_units,
        param_order=param_order,
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        return_unit=return_unit,
        decorators=decorators,
    )


def _decorator_base(dec: ast.expr) -> ast.expr:
    """``@implements("x")`` -> the ``implements`` expression."""
    return dec.func if isinstance(dec, ast.Call) else dec


def _index_module(mod: ModuleInfo) -> None:
    # imports
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                mod.imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                mod.imports[local] = f"{node.module}.{alias.name}"

    def add_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str, cls: str | None
    ) -> None:
        fn = _function_info(mod, node, qualname, cls)
        mod.functions[qualname] = fn
        for child in node.body:
            _walk_nested(child, qualname, cls)

    def _walk_nested(node: ast.stmt, parent_qual: str, cls: str | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, f"{parent_qual}.{node.name}", cls)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    _walk_nested(child, parent_qual, cls)

    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            ci = ClassInfo(module=mod.name, name=node.name, node=node, path=mod.path)
            ci.is_dataclass = any(
                _dotted(_decorator_base(d)).split(".")[-1] == "dataclass"
                for d in node.decorator_list
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    ci.methods.add(item.name)
                    add_function(item, f"{node.name}.{item.name}", node.name)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    unit = unit_from_annotation(item.annotation) or seed_from_name(
                        item.target.id
                    )
                    ci.fields.append((item.target.id, unit))
            mod.classes[node.name] = ci
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for t in targets:
                for leaf in ast.walk(t):
                    if isinstance(leaf, ast.Name):
                        mod.module_level_names.add(leaf.id)
        elif isinstance(node, (ast.For, ast.With, ast.If, ast.Try)):
            # conservative: names bound in module-level blocks
            for leaf in ast.walk(node):
                if isinstance(leaf, (ast.Assign, ast.AnnAssign)):
                    tgts = leaf.targets if isinstance(leaf, ast.Assign) else [leaf.target]
                    for t in tgts:
                        for n in ast.walk(t):
                            if isinstance(n, ast.Name):
                                mod.module_level_names.add(n.id)


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class _CallCollector:
    """Fills in calls / references / spawn targets / module instances."""

    def __init__(self, index: ProjectIndex, mod: ModuleInfo) -> None:
        self.index = index
        self.mod = mod

    def run(self) -> None:
        # module-scope instances: NAME = SomeClass(...)
        for node in self.mod.tree.body:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                fq = self.index.resolve_symbol(self.mod, _dotted(node.value.func))
                if fq in self.index.classes:
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            self.mod.module_instances[t.id] = fq
        for fn in self.mod.functions.values():
            self._collect(fn)

    # -- per-function -----------------------------------------------------
    def _collect(self, fn: FunctionInfo) -> None:
        local_instances = local_instance_map(self.index, self.mod, fn)
        mc_locals = monte_carlo_locals(self.index, self.mod, fn)
        for node in walk_function_body(fn.node):
            if isinstance(node, ast.Call):
                target = resolve_call(
                    self.index, self.mod, fn, node, local_instances
                )
                if target is not None:
                    fn.calls.append(target.fq)
                self._spawn_targets(fn, node, mc_locals)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                ref = self._function_ref(fn, node.id)
                if ref is not None:
                    fn.references.append(ref)

    def _function_ref(self, fn: FunctionInfo, name: str) -> str | None:
        """A bare name that denotes a project function (callback)."""
        nested = f"{fn.qualname}.{name}"
        if nested in self.mod.functions:
            return self.mod.functions[nested].fq
        fq = self.index.resolve_symbol(self.mod, name)
        if fq is not None and fq in self.index.functions:
            return fq
        return None

    def _spawn_targets(
        self, fn: FunctionInfo, node: ast.Call, mc_locals: set[str]
    ) -> None:
        """Record worker-pool entry points fanned out from this call."""
        func = node.func
        if not isinstance(func, ast.Attribute) or not node.args:
            return
        # loop.run_in_executor(pool, fn, *args) is the asyncio hop into
        # a pool: the callable rides second, behind the executor.
        callable_pos = 1 if func.attr == "run_in_executor" else 0
        if len(node.args) <= callable_pos:
            return
        first = node.args[callable_pos]
        target: str | None = None
        if isinstance(first, ast.Name):
            target = self._function_ref(fn, first.id)
        elif isinstance(first, ast.Attribute):
            fq = self.index.resolve_symbol(self.mod, _dotted(first))
            if fq in self.index.functions:
                target = fq
        if target is None:
            return
        if func.attr in {"submit", "map", "run_in_executor"}:
            fn.spawn_targets.append(target)
        elif func.attr == "run":
            base = func.value
            if isinstance(base, ast.Name) and base.id in mc_locals:
                fn.spawn_targets.append(target)
            elif isinstance(base, ast.Call) and _dotted(base.func).endswith(
                "MonteCarlo"
            ):
                fn.spawn_targets.append(target)


def walk_function_body(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.AST]:
    """All nodes in a function, excluding nested def bodies (lambdas
    stay — they execute in the enclosing function's context)."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = [child for stmt in node.body for child in [stmt]]
    while stack:
        current = stack.pop()
        out.append(current)
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # annotation/default expressions still run here; bodies don't
            stack.extend(current.args.defaults)
            stack.extend(d for d in current.args.kw_defaults if d is not None)
            continue
        stack.extend(ast.iter_child_nodes(current))
    return out


def local_instance_map(
    index: ProjectIndex, mod: ModuleInfo, fn: FunctionInfo
) -> dict[str, str]:
    """Locals assigned from a project-class constructor -> class fq.

    Seeds ``self`` with the enclosing class so ``self.method()``
    resolves, and parameters annotated with a project class resolve
    too (``def f(bank: TemplateBank)``).
    """
    out: dict[str, str] = {}
    if fn.cls is not None:
        out["self"] = f"{fn.module}.{fn.cls}"
        out["cls"] = f"{fn.module}.{fn.cls}"
    for a in [*fn.node.args.posonlyargs, *fn.node.args.args, *fn.node.args.kwonlyargs]:
        ann = a.annotation
        if ann is not None:
            fq = index.resolve_symbol(mod, _dotted(_strip_optional(ann)))
            if fq in index.classes:
                out[a.arg] = fq
    for node in walk_function_body(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            fq = index.resolve_symbol(mod, _dotted(node.value.func))
            if fq in index.classes:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out[t.id] = fq
    return out


def _strip_optional(node: ast.expr) -> ast.expr:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = node.left
        if isinstance(left, ast.Constant) and left.value is None:
            return node.right
        return _strip_optional(left)
    if isinstance(node, ast.Subscript):
        base = node.value
        name = base.id if isinstance(base, ast.Name) else ""
        if name == "Optional":
            return node.slice
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node  # string annotation: handled by caller via _dotted -> ''
    return node


def monte_carlo_locals(
    index: ProjectIndex, mod: ModuleInfo, fn: FunctionInfo
) -> set[str]:
    """Locals holding a MonteCarlo instance (``mc = MonteCarlo(...)``)."""
    out: set[str] = set()
    for node in walk_function_body(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _dotted(node.value.func).split(".")[-1] == "MonteCarlo":
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
    return out


def resolve_call(
    index: ProjectIndex,
    mod: ModuleInfo,
    fn: FunctionInfo | None,
    node: ast.Call,
    local_instances: dict[str, str],
) -> FunctionInfo | None:
    """Resolve a call site to a project function, or ``None``."""
    func = node.func
    if isinstance(func, ast.Name):
        if fn is not None:
            nested = f"{fn.qualname}.{func.id}"
            if nested in mod.functions:
                return mod.functions[nested]
        return index.function_at(index.resolve_symbol(mod, func.id))
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            cls_fq = local_instances.get(base.id) or mod.module_instances.get(base.id)
            if cls_fq is not None:
                return index.function_at(f"{cls_fq}.{func.attr}")
            dotted = _dotted(func)
            if dotted:
                return index.function_at(index.resolve_symbol(mod, dotted))
        elif isinstance(base, ast.Call):
            base_fq = index.resolve_symbol(mod, _dotted(base.func))
            if base_fq in index.classes:
                return index.function_at(f"{base_fq}.{func.attr}")
    return None
