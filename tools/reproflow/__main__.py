"""CLI entry point: ``python -m tools.reproflow [paths...]``.

Exit codes: 0 clean (baselined findings allowed), 1 new findings,
2 usage / parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from tools.reproflow import RULES, analyze_paths, build_report
from tools.reproflow.model import Baseline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reproflow",
        description=(
            "cross-module units-and-purity dataflow analyzer for the "
            "multiscatter reproduction"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=[], help="files or directories to analyze"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes/prefixes to check (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json includes the annotated call graph)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline JSON of acknowledged findings (matched ones are non-fatal)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--no-bytecode-check",
        action="store_true",
        help="skip the B001/B002 tracked-artifact repo guards",
    )
    parser.add_argument(
        "--repo-root",
        default=".",
        help="repository root for the B001/B002 guards (default: cwd)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, desc in sorted(RULES.items()):
            print(f"{code}  {desc}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m tools.reproflow src/repro)")

    select = (
        tuple(c.strip() for c in args.select.split(",") if c.strip())
        if args.select
        else None
    )
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"reproflow: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    result = analyze_paths(
        args.paths,
        select=select,
        baseline=baseline,
        check_bytecode=not args.no_bytecode_check,
        repo_root=args.repo_root,
    )

    for path, line, msg in result.errors:
        print(f"{path}:{line}:1: parse error: {msg}", file=sys.stderr)

    if args.write_baseline:
        Baseline.from_findings([*result.findings, *result.baselined]).write(
            args.write_baseline
        )
        print(
            f"reproflow: wrote {len(result.findings) + len(result.baselined)} "
            f"fingerprint(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        json.dump(build_report(result), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for f in result.findings:
            print(f.render())
        if result.baselined:
            print(
                f"reproflow: {len(result.baselined)} baselined finding(s) "
                "suppressed",
                file=sys.stderr,
            )

    if result.errors:
        return 2
    if result.findings:
        if args.format == "text":
            print(
                f"reproflow: {len(result.findings)} finding(s)", file=sys.stderr
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
