"""B001/B002: build products tracked by git.

Committed ``.pyc`` files are both noise and a reproducibility hazard
(stale bytecode can shadow edited sources on some import paths), and
committed packaging metadata (``*.egg-info``) drifts out of sync with
``pyproject.toml`` the moment dependencies change, so CI fails if
either reappears.  Silently returns no findings when git is
unavailable or the directory is not a work tree — the rules guard the
repository, not arbitrary file sets.
"""

from __future__ import annotations

import subprocess

from tools.reproflow.model import Finding

__all__ = ["check_tracked_bytecode"]

_PATTERNS = ("*.pyc", "*.pyo", "*$py.class", "__pycache__")
_EGG_INFO_PATTERNS = ("*.egg-info", "*.egg-info/*")

_B002_MESSAGE = (
    "packaging metadata (egg-info) is tracked by git; "
    "`git rm --cached` it and rely on .gitignore"
)


def _tracked(repo_root: str, patterns: tuple[str, ...]) -> list[str]:
    try:
        proc = subprocess.run(
            ["git", "ls-files", "-z", "--", *patterns],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if proc.returncode != 0:
        return []
    return sorted(p for p in proc.stdout.split("\0") if p)


def check_tracked_bytecode(repo_root: str = ".") -> list[Finding]:
    findings = []
    for path in _tracked(repo_root, _PATTERNS):
        findings.append(
            Finding(
                path=path,
                line=1,
                col=1,
                code="B001",
                message="compiled bytecode is tracked by git; "
                "`git rm --cached` it and rely on .gitignore",
            )
        )
    for path in _tracked(repo_root, _EGG_INFO_PATTERNS):
        findings.append(
            Finding(
                path=path,
                line=1,
                col=1,
                code="B002",
                message=_B002_MESSAGE,
            )
        )
    return findings
