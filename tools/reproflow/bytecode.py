"""B001: compiled bytecode tracked by git.

Committed ``.pyc`` files are both noise and a reproducibility hazard
(stale bytecode can shadow edited sources on some import paths), so CI
fails if any reappear.  Silently returns no findings when git is
unavailable or the directory is not a work tree — the rule guards the
repository, not arbitrary file sets.
"""

from __future__ import annotations

import subprocess

from tools.reproflow.model import Finding

__all__ = ["check_tracked_bytecode"]

_PATTERNS = ("*.pyc", "*.pyo", "*$py.class", "__pycache__")


def check_tracked_bytecode(repo_root: str = ".") -> list[Finding]:
    try:
        proc = subprocess.run(
            ["git", "ls-files", "-z", "--", *_PATTERNS],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if proc.returncode != 0:
        return []
    findings = []
    for path in sorted(p for p in proc.stdout.split("\0") if p):
        findings.append(
            Finding(
                path=path,
                line=1,
                col=1,
                code="B001",
                message="compiled bytecode is tracked by git; "
                "`git rm --cached` it and rely on .gitignore",
            )
        )
    return findings
