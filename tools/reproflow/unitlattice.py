"""The physical-unit lattice and its inference seeds (stdlib only).

Mirrors :mod:`repro.types.units` without importing it — reproflow must
analyze the repo, not execute it.  Three sources seed the lattice:

1. **Annotations**: parameters/returns/fields annotated with the
   ``repro.types.units`` aliases (``Hertz``, ``Seconds``, ...), matched
   by alias name (``units.Hertz`` and bare ``Hertz`` both work).
2. **Exact names**: well-known identifiers whose unit is a repo-wide
   convention (``sample_rate`` is always Hz, ``l_p``/``l_m`` are ADC
   sample counts, ``kappa``/``gamma`` are §2.4 symbol counts).
3. **Suffixes**: the ``_hz``/``_us``/``_dbm`` naming convention.  Each
   scale variant is a distinct lattice member on the same dimension, so
   ``x_us + y_s`` is a U001 mismatch even though both are "time".

The lattice is flat apart from the special literal element: numeric
literals combine transparently with every unit (``l_p + 2`` stays in
samples), and unknown absorbs everything (no finding is ever produced
when either side is unknown).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "UnitTok",
    "LITERAL",
    "ALIAS_UNITS",
    "EXACT_NAMES",
    "SUFFIX_UNITS",
    "seed_from_name",
    "combine_additive",
]


@dataclass(frozen=True)
class UnitTok:
    """One lattice member: a concrete unit at a concrete scale."""

    symbol: str
    dim: str

    def __repr__(self) -> str:
        return self.symbol


#: Sentinel for numeric literals: combines with anything, keeps the
#: other side's unit, and never triggers a finding.
LITERAL = UnitTok("<literal>", "<literal>")

HZ = UnitTok("Hz", "rate")
KHZ = UnitTok("kHz", "rate")
MHZ = UnitTok("MHz", "rate")
GHZ = UnitTok("GHz", "rate")
BPS = UnitTok("bps", "datarate")
KBPS = UnitTok("kbps", "datarate")
MBPS = UnitTok("Mbps", "datarate")
S = UnitTok("s", "time")
MS = UnitTok("ms", "time")
US = UnitTok("us", "time")
NS = UnitTok("ns", "time")
SAMPLES = UnitTok("samples", "count")
CHIPS = UnitTok("chips", "count")
SYMBOLS = UnitTok("symbols", "count")
BITS = UnitTok("bits", "count")
BYTES = UnitTok("bytes", "count")
DB = UnitTok("dB", "log-power")
DBM = UnitTok("dBm", "log-power")
MW = UnitTok("mW", "linear-power")
W = UnitTok("W", "linear-power")
V = UnitTok("V", "voltage")
MV = UnitTok("mV", "voltage")
M = UnitTok("m", "length")
CM = UnitTok("cm", "length")
MM = UnitTok("mm", "length")
KM = UnitTok("km", "length")
J = UnitTok("J", "energy")
MJ = UnitTok("mJ", "energy")
UJ = UnitTok("uJ", "energy")
NJ = UnitTok("nJ", "energy")
OHM = UnitTok("ohm", "resistance")
RATIO = UnitTok("ratio", "dimensionless")
PCT = UnitTok("pct", "dimensionless")

#: ``repro.types.units`` alias name -> lattice member.
ALIAS_UNITS: dict[str, UnitTok] = {
    "Hertz": HZ,
    "Seconds": S,
    "Microseconds": US,
    "Samples": SAMPLES,
    "Chips": CHIPS,
    "Symbols": SYMBOLS,
    "Bits": BITS,
    "Bytes": BYTES,
    "Decibels": DB,
    "DbmPower": DBM,
    "Milliwatts": MW,
    "Watts": W,
    "Volts": V,
    "Meters": M,
    "Ratio": RATIO,
}

#: Well-known identifiers (checked before suffixes, lowercase).  This
#: is where repo conventions that violate the suffix grammar live:
#: ``l_m`` is a matching-window *sample count*, not meters.
EXACT_NAMES: dict[str, UnitTok] = {
    "sample_rate": HZ,
    "new_rate_hz": HZ,
    "chip_rate": HZ,
    "symbol_rate": HZ,
    "bit_rate": HZ,
    "adc_rate": HZ,
    "baud_rate": HZ,
    "l_p": SAMPLES,
    "l_m": SAMPLES,
    "l_t": SAMPLES,
    "n_samples": SAMPLES,
    "payload_start": SAMPLES,
    "n_chips": CHIPS,
    "chips_per_symbol": RATIO,
    "samples_per_symbol": RATIO,
    "samples_per_chip": RATIO,
    "sps": RATIO,
    "n_symbols": SYMBOLS,
    "payload_symbols": SYMBOLS,
    "kappa": SYMBOLS,
    "gamma": SYMBOLS,
    "n_bits": BITS,
    "n_payload_bytes": BYTES,
    "payload_bytes": BYTES,
    "db": DB,
    "dbm": DBM,
    "mw": MW,
    "v_ref": V,
    "noise_v_rms": V,
    "voltage": V,
    "wavelength": M,
    "duty_cycle": RATIO,
}

#: Name-suffix -> unit (longest suffix wins; lowercase).
SUFFIX_UNITS: dict[str, UnitTok] = {
    "_hz": HZ,
    "_khz": KHZ,
    "_mhz": MHZ,
    "_ghz": GHZ,
    "_bps": BPS,
    "_kbps": KBPS,
    "_mbps": MBPS,
    "_s": S,
    "_sec": S,
    "_ms": MS,
    "_us": US,
    "_ns": NS,
    "_samples": SAMPLES,
    "_sample": SAMPLES,
    "_chips": CHIPS,
    "_chip": CHIPS,
    "_symbols": SYMBOLS,
    "_syms": SYMBOLS,
    "_bits": BITS,
    "_bytes": BYTES,
    "_db": DB,
    "_dbm": DBM,
    "_dbi": DB,
    "_mw": MW,
    "_w": W,
    "_v": V,
    "_v_rms": V,
    "_mv": MV,
    "_m": M,
    "_cm": CM,
    "_mm": MM,
    "_km": KM,
    "_j": J,
    "_mj": MJ,
    "_uj": UJ,
    "_nj": NJ,
    "_ohm": OHM,
    "_frac": RATIO,
    "_ratio": RATIO,
    "_pct": PCT,
}

_SUFFIXES_BY_LENGTH = sorted(SUFFIX_UNITS, key=len, reverse=True)


def seed_from_name(name: str) -> UnitTok | None:
    """Infer a unit from an identifier via exact names, then suffixes."""
    low = name.lower()
    exact = EXACT_NAMES.get(low)
    if exact is not None:
        return exact
    for suffix in _SUFFIXES_BY_LENGTH:
        if low.endswith(suffix) and len(low) > len(suffix):
            return SUFFIX_UNITS[suffix]
    return None


def combine_additive(
    left: UnitTok | None, right: UnitTok | None, op: str
) -> tuple[UnitTok | None, str | None]:
    """Combine units under ``+``/``-``/``%``/comparison.

    Returns ``(result_unit, problem)`` where ``problem`` is ``None``,
    ``"mismatch"`` (U001), ``"dbm-sum"`` (U001: adding two absolute
    log powers), or ``"db-linear"`` (U002).

    Log-domain algebra is modeled explicitly: dB ± dB = dB,
    dBm ± dB = dBm, dBm − dBm = dB, but dBm + dBm has no physical
    meaning and log-domain never combines with linear power/voltage.
    """
    if left is None or right is None:
        return None, None
    if left is LITERAL:
        return (right if right is not LITERAL else LITERAL), None
    if right is LITERAL:
        return left, None
    if left == right:
        if left == DBM and op == "+":
            return DBM, "dbm-sum"
        if left == DBM and op == "-":
            return DB, None
        return left, None
    if left.dim == "log-power" and right.dim == "log-power":
        # dB + dBm (either order) is a legal gain application.
        return DBM, None
    log_side = left.dim == "log-power" or right.dim == "log-power"
    lin_side = {left.dim, right.dim} & {"linear-power", "voltage"}
    if log_side and lin_side:
        return None, "db-linear"
    return None, "mismatch"
