"""CLI entry point: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import sys

from tools.reprolint import RULES, lint_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="determinism & dtype AST linter for the multiscatter reproduction",
    )
    parser.add_argument("paths", nargs="*", default=[], help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to check (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, desc in sorted(RULES.items()):
            print(f"{code}  {desc}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m tools.reprolint src/)")

    select = [c.strip() for c in args.select.split(",")] if args.select else None
    violations = lint_paths(args.paths, select=select)
    for v in violations:
        print(v.render())
    if violations:
        print(f"reprolint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
