"""CLI entry point: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import sys

from tools.analysis_common import EXIT_CLEAN, EXIT_FINDINGS, parse_select
from tools.reprolint import RULES, lint_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="determinism & dtype AST linter for the multiscatter reproduction",
    )
    parser.add_argument("paths", nargs="*", default=[], help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to check (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, desc in sorted(RULES.items()):
            print(f"{code}  {desc}")
        return EXIT_CLEAN
    if not args.paths:
        parser.error("no paths given (try: python -m tools.reprolint src/)")

    violations = lint_paths(args.paths, select=parse_select(args.select))
    for v in violations:
        print(v.render())
    if violations:
        print(f"reprolint: {len(violations)} violation(s)", file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
