"""Rule implementations for reprolint (stdlib ``ast`` only).

Each rule has a stable code, a one-line message template, and a
rationale tied to the reproduction's determinism / dtype invariants
(see docs/STATIC_ANALYSIS.md for the full catalog):

R001  global-state RNG (``np.random.<fn>``, ``random.<fn>``, unseeded
      or time-seeded ``default_rng``) — breaks bit-identical
      parallel Monte-Carlo.
R002  float/complex ``==`` / ``!=`` on array-like expressions —
      breaks decision-identical template matching across platforms.
R003  implicit dtype at complex boundaries (complex constructors
      without an explicit dtype; arithmetic mixing explicit narrow
      and wide widths) — silently upcasts waveform arrays.
R004  mutable default arguments — cross-call state, the classic
      hidden-nondeterminism footgun.
R005  missing return annotation (only in configured strict
      directories) — the typing pass's enforcement half.

Suppression: append ``# reprolint: disable=R001`` (comma-separate for
several codes, or ``disable=all``) to the offending line, or put a
``# reprolint: disable-file=R001`` comment in the first ten lines of
the file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from tools.analysis_common import is_code_suppressed, parse_suppressions

__all__ = [
    "Violation",
    "RULES",
    "STRICT_RETURN_DIRS",
    "lint_source",
]

#: code -> short description (the rule catalog shown by ``--list-rules``).
RULES: dict[str, str] = {
    "R001": "global-state or time-seeded RNG; thread np.random.Generator/SeedSequence instead",
    "R002": "float/complex ==/!= on array-like expression; use np.isclose/np.allclose or integer dtypes",
    "R003": "implicit dtype at complex64/complex128 boundary; make the dtype explicit",
    "R004": "mutable default argument; use None and create inside the function",
    "R005": "missing return annotation in strict-typed directory",
}

#: path fragments where R005 (missing return annotation) is enforced.
STRICT_RETURN_DIRS: tuple[str, ...] = ("src/repro/phy/", "src/repro/core/")

#: np.random attributes that are *not* global-state (constructors and
#: types that thread explicit state).
_NP_RANDOM_OK = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "default_rng",
    }
)

#: stdlib ``random`` module functions that hit the hidden global Mersenne
#: Twister.  ``random.Random`` (explicit instance) is allowed when seeded.
_STDLIB_RANDOM_GLOBAL = frozenset(
    {
        "random",
        "seed",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "lognormvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)

_NARROW_DTYPES = frozenset({"complex64", "float32", "float16", "half", "single", "csingle"})
_WIDE_DTYPES = frozenset({"complex128", "float64", "double", "cdouble"})

_ARRAY_CONSTRUCTORS = frozenset(
    {"array", "asarray", "zeros", "ones", "empty", "full", "full_like", "zeros_like", "ones_like"}
)

#: np functions that return arrays — used as "array-like" evidence for R002.
_NP_ARRAY_FUNCS = frozenset(
    {
        "abs",
        "angle",
        "real",
        "imag",
        "conj",
        "conjugate",
        "sign",
        "round",
        "exp",
        "log",
        "sqrt",
        "mean",
        "sum",
        "cumsum",
        "diff",
        "where",
        "concatenate",
        "stack",
        "dot",
        "matmul",
        "correlate",
        "convolve",
    }
    | _ARRAY_CONSTRUCTORS
)


@dataclass(frozen=True)
class Violation:
    """One rule hit: location, code, and human-readable message."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _dotted(node: ast.expr) -> str:
    """``np.random.default_rng`` -> that string; '' for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_time_call(node: ast.expr) -> bool:
    """True for ``time.time()`` / ``time.time_ns()`` style expressions."""
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in {"time.time", "time.time_ns", "time.monotonic", "time.perf_counter"}
    return False


def _dtype_evidence(node: ast.expr) -> set[str]:
    """Explicit dtype-width names mentioned anywhere in a subtree."""
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in (_NARROW_DTYPES | _WIDE_DTYPES):
            found.add(sub.attr)
        elif isinstance(sub, ast.Name) and sub.id in (_NARROW_DTYPES | _WIDE_DTYPES):
            found.add(sub.id)
    return found


def _has_complex_literal(node: ast.expr) -> bool:
    return any(
        isinstance(sub, ast.Constant) and isinstance(sub.value, complex)
        for sub in ast.walk(node)
    )


def _is_float_literal(node: ast.expr) -> bool:
    """A float/complex constant, possibly under a unary minus."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, (float, complex))


def _is_arraylike(node: ast.expr) -> bool:
    """Heuristic: does this expression plausibly evaluate to an ndarray?

    Evidence: a call to a known array-returning ``np.*`` function, a
    method call or subscript/slice on such a call, or arithmetic whose
    operands are array-like.
    """
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name.startswith(("np.", "numpy.")):
            leaf = name.rsplit(".", 1)[-1]
            return leaf in _NP_ARRAY_FUNCS
        # method on an array-like receiver, e.g. arr.mean(), arr.astype(...)
        if isinstance(node.func, ast.Attribute):
            return _is_arraylike(node.func.value)
        return False
    if isinstance(node, ast.BinOp):
        return _is_arraylike(node.left) or _is_arraylike(node.right)
    if isinstance(node, ast.Subscript):
        return _is_arraylike(node.value)
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, strict_return: bool) -> None:
        self.path = path
        self.strict_return = strict_return
        self.violations: list[Violation] = []

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # ---------------------------------------------------------- R001
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        leaf = name.rsplit(".", 1)[-1] if name else ""

        if name.startswith(("np.random.", "numpy.random.")):
            if leaf == "RandomState":
                self._emit(node, "R001", "legacy np.random.RandomState; use np.random.default_rng(seed)")
            elif leaf == "default_rng":
                if not node.args and not node.keywords:
                    self._emit(
                        node,
                        "R001",
                        "unseeded np.random.default_rng() is time-seeded; pass a seed or thread a Generator",
                    )
                elif any(_is_time_call(a) for a in node.args):
                    self._emit(node, "R001", "time-seeded RNG; derive seeds from np.random.SeedSequence")
            elif leaf not in _NP_RANDOM_OK:
                self._emit(
                    node,
                    "R001",
                    f"np.random.{leaf}() uses hidden global RNG state; thread a np.random.Generator",
                )
        elif name.startswith("random.") and name.count(".") == 1:
            if leaf in _STDLIB_RANDOM_GLOBAL:
                self._emit(
                    node,
                    "R001",
                    f"random.{leaf}() uses the global Mersenne Twister; thread a seeded RNG",
                )
            elif leaf == "Random" and not node.args and not node.keywords:
                self._emit(node, "R001", "unseeded random.Random() is time-seeded; pass a seed")
        elif name in {"Generator", "SeedSequence"} or leaf in {"SeedSequence"}:
            if any(_is_time_call(a) for a in node.args):
                self._emit(node, "R001", "time-seeded RNG; use a fixed or threaded seed")

        # R003(a): complex data constructed without an explicit dtype.
        if name.startswith(("np.", "numpy.")) and leaf in _ARRAY_CONSTRUCTORS:
            has_dtype = any(k.arg == "dtype" for k in node.keywords) or len(node.args) >= 2
            if not has_dtype and node.args and _has_complex_literal(node.args[0]):
                self._emit(
                    node,
                    "R003",
                    f"np.{leaf}() builds complex data without an explicit dtype; pass dtype=np.complex128",
                )

        self.generic_visit(node)

    # ---------------------------------------------------------- R002
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq:
            floaty = any(_is_float_literal(o) for o in operands)
            arrayish = any(_is_arraylike(o) for o in operands)
            int_literal = any(
                isinstance(o, ast.Constant)
                and isinstance(o.value, int)
                and not isinstance(o.value, bool)
                for o in operands
            )
            # Two triggers: an exact float/complex literal on either
            # side of ==/!= (hazardous for scalars and arrays alike),
            # or an array-valued expression equality-compared against
            # anything but an integer literal.
            if floaty or (arrayish and not int_literal):
                self._emit(
                    node,
                    "R002",
                    "float/complex ==/!= comparison; use np.isclose/np.allclose or compare integers",
                )
        self.generic_visit(node)

    # ---------------------------------------------------------- R003(b)
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.MatMult)):
            left = _dtype_evidence(node.left)
            right = _dtype_evidence(node.right)
            if left and right:
                mixed = (left & _NARROW_DTYPES and right & _WIDE_DTYPES) or (
                    left & _WIDE_DTYPES and right & _NARROW_DTYPES
                )
                if mixed:
                    self._emit(
                        node,
                        "R003",
                        "arithmetic mixes narrow and wide dtypes; insert an explicit .astype at the boundary",
                    )
        self.generic_visit(node)

    # ---------------------------------------------------------- R004/R005
    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                self._emit(
                    default,
                    "R004",
                    f"mutable default argument in {node.name}(); use None and build inside",
                )
        if self.strict_return and node.returns is None:
            self._emit(
                node,
                "R005",
                f"function {node.name}() lacks a return annotation (strict-typed directory)",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


def _suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-level ``# reprolint: disable`` pragmas."""
    return parse_suppressions(source, "reprolint")


def _suppressed(v: Violation, per_line: dict[int, set[str]], per_file: set[str]) -> bool:
    return is_code_suppressed(v.code, v.line, per_line, per_file)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Iterable[str] | None = None,
    strict_return_dirs: tuple[str, ...] = STRICT_RETURN_DIRS,
) -> list[Violation]:
    """Lint one module's source text; returns surviving violations.

    ``select`` restricts checking to the given rule codes; ``path`` is
    used both for reporting and for R005's directory scoping (posix or
    native separators both work).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    norm = path.replace("\\", "/")
    strict = any(fragment in norm for fragment in strict_return_dirs)
    linter = _Linter(path=path, strict_return=strict)
    linter.visit(tree)
    per_line, per_file = _suppressions(source)
    wanted = set(select) if select is not None else None
    out = [
        v
        for v in linter.violations
        if not _suppressed(v, per_line, per_file)
        and (wanted is None or v.code in wanted or v.code == "E999")
    ]
    out.sort(key=lambda v: (v.line, v.col, v.code))
    return out


def iter_violations(
    sources: Iterable[tuple[str, str]],
    *,
    select: Iterable[str] | None = None,
) -> Iterator[Violation]:
    """Lint many ``(path, source)`` pairs lazily."""
    for path, source in sources:
        yield from lint_source(source, path, select=select)
