"""reprolint — repo-specific determinism & dtype AST linter.

Usage (from the repo root)::

    python -m tools.reprolint src/            # lint a tree
    python -m tools.reprolint --list-rules    # show the rule catalog
    python -m tools.reprolint --select R001 src/repro/sim/

Rules enforce the reproduction's core invariants (bit-identical
Monte-Carlo, byte-identical PHY kernels, decision-identical matching):
see :mod:`tools.reprolint.rules` and docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

from tools.reprolint.rules import (
    RULES,
    STRICT_RETURN_DIRS,
    Violation,
    iter_violations,
    lint_source,
)

__all__ = [
    "RULES",
    "STRICT_RETURN_DIRS",
    "Violation",
    "iter_violations",
    "lint_source",
    "lint_paths",
]


def lint_paths(
    paths: list[str],
    *,
    select: list[str] | None = None,
) -> list[Violation]:
    """Lint files and directory trees; returns all violations found."""
    import os

    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs if d not in {"__pycache__", ".git"})
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        elif p.endswith(".py"):
            files.append(p)
    out: list[Violation] = []
    for path in files:
        with open(path, encoding="utf-8") as fh:
            out.extend(lint_source(fh.read(), path, select=select))
    return out
