"""Finding model, rule catalog, pragmas, and baselines for reproasync.

reproasync is the concurrency pillar of the static-analysis suite: it
shares the pragma grammar, baseline format, ``--select`` semantics and
exit codes with reprolint/reproflow/reproshape via
:mod:`tools.analysis_common`, and binds the ``reproasync`` tool prefix
(``# reproasync: disable=C001``).
"""

from __future__ import annotations

from dataclasses import dataclass

from tools.analysis_common import (
    BaselineBase,
    finding_fingerprint,
    is_code_suppressed,
    parse_suppressions,
)

__all__ = [
    "RULES",
    "Finding",
    "Baseline",
    "suppressions",
    "is_suppressed",
]

#: code -> one-line description (shown by ``--list-rules``; the full
#: catalog with rationale lives in docs/STATIC_ANALYSIS.md).
RULES: dict[str, str] = {
    "C001": (
        "blocking call reachable inside an async def without "
        "to_thread/executor hand-off"
    ),
    "C002": (
        "orphaned coroutine/task: spawned task dropped or gathered "
        "exceptions silently discarded"
    ),
    "C003": (
        "cancellation-unsafe resource: await between acquire and release "
        "without try/finally"
    ),
    "C004": (
        "async race: shared state read and written across an await "
        "boundary from multiple tasks without a lock"
    ),
    "C005": (
        "determinism-replay violation: seeded Generator drawn from "
        "multiple tasks, or a zero-draw guarantee dropped"
    ),
    "C006": "unbounded asyncio.Queue in a strict directory",
}


@dataclass(frozen=True)
class Finding:
    """One rule hit: location, code, message, enclosing symbol."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: dotted module + qualname of the enclosing function ("" at module
    #: scope); part of the baseline fingerprint.
    symbol: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files."""
        return finding_fingerprint(self.path, self.code, self.symbol, self.message)

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path.replace("\\", "/"),
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }


def suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-level ``# reproasync: disable`` pragmas."""
    return parse_suppressions(source, "reproasync")


def is_suppressed(
    finding: Finding, per_line: dict[int, set[str]], per_file: set[str]
) -> bool:
    return is_code_suppressed(finding.code, finding.line, per_line, per_file)


class Baseline(BaselineBase):
    """Acknowledged reproasync findings, keyed by fingerprint."""

    TOOL = "reproasync"
