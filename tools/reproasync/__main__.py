"""CLI entry point: ``python -m tools.reproasync [paths...]``.

Exit codes: 0 clean (baselined findings allowed), 1 new findings,
2 usage / parse errors — the shared analyzer contract.
"""

from __future__ import annotations

import argparse
import json
import sys

from tools.analysis_common import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    parse_select,
)
from tools.reproasync import RULES, analyze_paths, build_report
from tools.reproasync.model import Baseline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reproasync",
        description=(
            "whole-program asyncio/concurrency safety analyzer for the "
            "multiscatter reproduction"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=[], help="files or directories to analyze"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes/prefixes to check (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json includes the async call graph + proofs)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline JSON of acknowledged findings (matched ones are non-fatal)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--strict-dirs",
        metavar="FRAGMENTS",
        help=(
            "comma-separated path fragments where C006 (bounded queues) is "
            "enforced (default: src/repro/gateway)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, desc in sorted(RULES.items()):
            print(f"{code}  {desc}")
        return EXIT_CLEAN
    if not args.paths:
        parser.error("no paths given (try: python -m tools.reproasync src/repro)")

    select = parse_select(args.select)
    strict_dirs = (
        tuple(s.strip() for s in args.strict_dirs.split(",") if s.strip())
        if args.strict_dirs
        else None
    )
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"reproasync: cannot load baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR

    result = analyze_paths(
        args.paths, select=select, strict_dirs=strict_dirs, baseline=baseline
    )

    for path, line, msg in result.errors:
        print(f"{path}:{line}:1: parse error: {msg}", file=sys.stderr)

    if args.write_baseline:
        Baseline.from_findings([*result.findings, *result.baselined]).write(
            args.write_baseline
        )
        print(
            f"reproasync: wrote {len(result.findings) + len(result.baselined)} "
            f"fingerprint(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    if args.format == "json":
        json.dump(build_report(result), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for f in result.findings:
            print(f.render())
        if result.baselined:
            print(
                f"reproasync: {len(result.baselined)} baselined finding(s) "
                "suppressed",
                file=sys.stderr,
            )

    if result.errors:
        return EXIT_ERROR
    if result.findings:
        if args.format == "text":
            print(
                f"reproasync: {len(result.findings)} finding(s)", file=sys.stderr
            )
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
