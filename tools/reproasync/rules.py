"""C-series rules: asyncio/concurrency safety and determinism proofs.

C001  blocking call transitively reachable inside an ``async def``
      without a ``to_thread``/executor hand-off
C002  orphaned coroutine/task: spawn result dropped, or gathered
      exceptions silently discarded
C003  cancellation-unsafe resource: await between acquire and release
      without try/finally
C004  async race: shared state read and written across an await from
      >= 2 concurrent task instances without a lock
C005  determinism-replay violation: a seeded Generator drawn from
      multiple tasks, or the MacArbiter zero-draw-when-uncontended
      guarantee dropped
C006  unbounded ``asyncio.Queue`` in a strict directory

All rules consume the :class:`~tools.reproasync.taskgraph.AsyncGraph`;
resolution gaps produce silence, not guesses (under-approximation, in
reproflow's spirit).
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from tools.reproasync.model import Finding
from tools.reproasync.taskgraph import (
    DRAW_METHODS,
    AsyncGraph,
    chain_of,
    is_rng_chain,
    iter_region_calls,
    resolve_call_ex,
    resolved_dotted,
    _taskgroup_locals,
)
from tools.reproflow.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    local_instance_map,
    monte_carlo_locals,
)

__all__ = ["STRICT_ASYNC_DIRS", "check_concurrency"]

#: directories where C006 (bounded queues) is enforced; matched as
#: normalized path fragments, like reproflow's strict unit dirs.
STRICT_ASYNC_DIRS: tuple[str, ...] = ("src/repro/gateway",)

#: fully-resolved dotted names that block the event loop outright.
_BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.waitpid",
        "socket.create_connection",
    }
)

#: method names that are blocking file I/O wherever they appear.
_FILE_IO_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: the repo's heavy PHY/decode kernels: milliseconds of pure compute
#: per call, which stalls every other task when run inline.  Matched by
#: name so unresolvable receivers (``session.pipeline``) still count.
_HEAVY_KERNELS = frozenset(
    {
        "excite_and_react",
        "decode_many",
        "decode_pending_many",
        "run_airlink",
        "modulate",
        "demodulate",
        "modulate_batch",
        "demodulate_batch",
        "decode_batch",
        "decode_soft_batch",
        "score_capture",
        "score_capture_batch",
    }
)

#: acquire-method name -> the release-method names that pair with it.
_RELEASES_FOR: dict[str, frozenset[str]] = {
    "acquire": frozenset({"release"}),
    "subscribe": frozenset({"unsubscribe", "close"}),
    "register_tag": frozenset({"deregister_tag"}),
    "register": frozenset({"deregister", "unregister"}),
    "connect": frozenset({"disconnect", "close"}),
    "open_connection": frozenset({"close"}),
}

_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})


def _walk_skip_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Subtree walk that does not descend into nested def bodies."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def _has_await(stmt: ast.stmt) -> bool:
    return any(isinstance(n, ast.Await) for n in _walk_skip_defs(stmt))


def _in_strict_dirs(path: str, strict_dirs: tuple[str, ...]) -> bool:
    norm = os.path.abspath(path).replace("\\", "/")
    return any(fragment in norm for fragment in strict_dirs)


def _finding(
    mod: ModuleInfo, fn: FunctionInfo | None, node: ast.AST, code: str, message: str
) -> Finding:
    return Finding(
        path=mod.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
        symbol=fn.fq if fn is not None else "",
    )


# ----------------------------------------------------------------------
# C001 — blocking calls reachable in async functions
# ----------------------------------------------------------------------
class _BlockingScanner:
    """Finds blocking primitives directly and through sync call chains."""

    def __init__(self, graph: AsyncGraph) -> None:
        self.graph = graph
        self.index = graph.index
        #: fq -> [fq hops..., primitive desc] or None (memoized)
        self._paths: dict[str, list[str] | None] = {}

    # -- per-call primitives ---------------------------------------------
    def _exempt_ids(self, fn: FunctionInfo) -> set[int]:
        """Nodes handed to ``to_thread``/``run_in_executor`` (off-loop)."""
        exempt: set[int] = set()
        for call, _ in iter_region_calls(fn.node):
            func = call.func
            offloaded = (
                isinstance(func, ast.Attribute)
                and func.attr in ("to_thread", "run_in_executor")
            ) or resolved_dotted(self.index.modules[fn.module], func) == (
                "asyncio.to_thread"
            )
            if not offloaded:
                continue
            for arg in (*call.args, *(kw.value for kw in call.keywords)):
                exempt.update(id(n) for n in ast.walk(arg))
        return exempt

    def direct_desc(
        self,
        mod: ModuleInfo,
        call: ast.Call,
        mc_locals: set[str],
    ) -> str | None:
        """Describe the blocking primitive at ``call``, if it is one."""
        func = call.func
        dotted = resolved_dotted(mod, func)
        if dotted in _BLOCKING_DOTTED:
            return f"call {dotted}()"
        tail = func.attr if isinstance(func, ast.Attribute) else (
            dotted.rsplit(".", 1)[-1] if dotted else ""
        )
        if tail in _HEAVY_KERNELS:
            return f"heavy PHY kernel {tail}()"
        if isinstance(func, ast.Attribute):
            if func.attr in _FILE_IO_METHODS:
                return f"file I/O {func.attr}()"
            if func.attr == "run" and (
                isinstance(func.value, ast.Name) and func.value.id in mc_locals
            ):
                return "MonteCarlo.run()"
        if isinstance(func, ast.Name) and func.id == "open":
            if self.index.resolve_symbol(mod, "open") is None:
                return "file I/O open()"
        return None

    # -- transitive sync closure -----------------------------------------
    def blocking_path(self, fq: str, _visiting: set[str] | None = None) -> list[str] | None:
        """Shortest-found chain from sync ``fq`` to a blocking primitive:
        ``[fq, callee_fq, ..., "call time.sleep()"]``; None if clean."""
        if fq in self._paths:
            return self._paths[fq]
        visiting = _visiting if _visiting is not None else set()
        if fq in visiting:
            return None
        visiting.add(fq)
        fn = self.index.functions.get(fq)
        result: list[str] | None = None
        if fn is not None and not isinstance(fn.node, ast.AsyncFunctionDef):
            mod = self.index.modules[fn.module]
            local_instances = local_instance_map(self.index, mod, fn)
            mc_locals = monte_carlo_locals(self.index, mod, fn)
            exempt = self._exempt_ids(fn)
            calls = [c for c, _ in iter_region_calls(fn.node) if id(c) not in exempt]
            for call in calls:
                desc = self.direct_desc(mod, call, mc_locals)
                if desc is not None:
                    result = [fq, desc]
                    break
            if result is None:
                for call in calls:
                    target = resolve_call_ex(
                        self.index, mod, fn, call, local_instances,
                        self.graph.attr_instances,
                    )
                    if target is None or isinstance(
                        target.node, ast.AsyncFunctionDef
                    ):
                        continue
                    if target.fq.endswith(".MonteCarlo.run"):
                        result = [fq, "MonteCarlo.run()"]
                        break
                    sub = self.blocking_path(target.fq, visiting)
                    if sub is not None:
                        result = [fq, *sub]
                        break
        visiting.discard(fq)
        self._paths[fq] = result
        return result

    # -- the rule ---------------------------------------------------------
    def check(self) -> list[Finding]:
        findings: list[Finding] = []
        for mod in self.index.modules.values():
            for fn in mod.functions.values():
                if not isinstance(fn.node, ast.AsyncFunctionDef):
                    continue
                local_instances = local_instance_map(self.index, mod, fn)
                mc_locals = monte_carlo_locals(self.index, mod, fn)
                exempt = self._exempt_ids(fn)
                for call, _ in iter_region_calls(fn.node):
                    if id(call) in exempt:
                        continue
                    desc = self.direct_desc(mod, call, mc_locals)
                    if desc is not None:
                        findings.append(
                            _finding(
                                mod, fn, call, "C001",
                                f"blocking {desc} inside async function "
                                f"'{fn.qualname}'; hand off via "
                                "asyncio.to_thread or an executor",
                            )
                        )
                        continue
                    target = resolve_call_ex(
                        self.index, mod, fn, call, local_instances,
                        self.graph.attr_instances,
                    )
                    if (
                        target is None
                        or target.fq == fn.fq
                        or isinstance(target.node, ast.AsyncFunctionDef)
                    ):
                        continue
                    if target.fq.endswith(".MonteCarlo.run"):
                        findings.append(
                            _finding(
                                mod, fn, call, "C001",
                                "blocking MonteCarlo.run() inside async "
                                f"function '{fn.qualname}'; hand off via "
                                "asyncio.to_thread or an executor",
                            )
                        )
                        continue
                    path = self.blocking_path(target.fq)
                    if path is not None:
                        hops, desc = path[:-1], path[-1]
                        findings.append(
                            _finding(
                                mod, fn, call, "C001",
                                f"blocking {desc} reachable inside async "
                                f"function '{fn.qualname}' via "
                                f"{' -> '.join(hops)}",
                            )
                        )
        return findings


# ----------------------------------------------------------------------
# C002 — orphaned tasks / swallowed gather exceptions
# ----------------------------------------------------------------------
def _iter_statements(fn: FunctionInfo) -> Iterator[ast.stmt]:
    """Every statement in the function's own region (nested defs skipped)."""
    stack: list[ast.stmt] = list(fn.node.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.ExceptHandler) or isinstance(
                child, ast.match_case
            ):
                stack.extend(
                    c for c in ast.iter_child_nodes(child) if isinstance(c, ast.stmt)
                )


def _spawn_call_kind(mod: ModuleInfo, call: ast.Call, tg_locals: set[str]) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _SPAWN_ATTRS:
        if isinstance(func.value, ast.Name) and func.value.id in tg_locals:
            return None  # TaskGroup supervises its children
        return func.attr
    dotted = resolved_dotted(mod, func)
    if dotted in ("asyncio.create_task", "asyncio.ensure_future"):
        return dotted.rsplit(".", 1)[-1]
    return None


def _is_swallowing_gather(mod: ModuleInfo, node: ast.expr) -> bool:
    """``await gather(..., return_exceptions=True)`` with result unused."""
    if not isinstance(node, ast.Await) or not isinstance(node.value, ast.Call):
        return False
    call = node.value
    func = call.func
    is_gather = (
        isinstance(func, ast.Attribute) and func.attr == "gather"
    ) or resolved_dotted(mod, func) == "asyncio.gather"
    if not is_gather:
        return False
    for kw in call.keywords:
        if kw.arg == "return_exceptions":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return False


def check_orphaned_tasks(index: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for mod in index.modules.values():
        for fn in mod.functions.values():
            tg_locals = _taskgroup_locals(fn)
            for stmt in _iter_statements(fn):
                value: ast.expr | None = None
                if isinstance(stmt, ast.Expr):
                    value = stmt.value
                elif (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "_"
                ):
                    value = stmt.value
                if value is None:
                    continue
                if isinstance(value, ast.Call):
                    kind = _spawn_call_kind(mod, value, tg_locals)
                    if kind is not None:
                        findings.append(
                            _finding(
                                mod, fn, value, "C002",
                                f"task spawned with {kind}() is dropped; "
                                "retain a reference and consume its result "
                                "or exception",
                            )
                        )
                elif _is_swallowing_gather(mod, value):
                    findings.append(
                        _finding(
                            mod, fn, value, "C002",
                            "gather(..., return_exceptions=True) result is "
                            "discarded; inspect the returned list so task "
                            "exceptions surface",
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# C003 — cancellation-unsafe acquire/release spans
# ----------------------------------------------------------------------
def _method_calls(stmt: ast.stmt) -> list[tuple[str, str | None, ast.Call]]:
    """(method name, receiver chain, node) for attr calls in ``stmt``."""
    out: list[tuple[str, str | None, ast.Call]] = []
    for node in _walk_skip_defs(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            chain = chain_of(node.func.value)
            out.append((node.func.attr, ".".join(chain) if chain else None, node))
    return out


def _check_c003_block(
    mod: ModuleInfo, fn: FunctionInfo, stmts: list[ast.stmt], findings: list[Finding]
) -> None:
    infos = [_method_calls(s) for s in stmts]
    awaits = [_has_await(s) for s in stmts]
    for i, stmt_calls in enumerate(infos):
        for name, receiver, node in stmt_calls:
            releases = _RELEASES_FOR.get(name)
            if releases is None:
                continue
            for j in range(i + 1, len(stmts)):
                match = next(
                    (
                        (rname, rnode)
                        for rname, rreceiver, rnode in infos[j]
                        if rname in releases
                        and (
                            receiver is None
                            or rreceiver is None
                            or rreceiver == receiver
                        )
                    ),
                    None,
                )
                if match is None:
                    continue
                if any(awaits[k] for k in range(i + 1, j)):
                    rname, _rnode = match
                    findings.append(
                        _finding(
                            mod, fn, node, "C003",
                            f"await between {name}() and {rname}() without "
                            "try/finally; cancellation mid-await leaks the "
                            "resource",
                        )
                    )
                break  # nearest matching release decides the span
    # recurse into nested blocks
    for stmt in stmts:
        for body in _child_blocks(stmt):
            _check_c003_block(mod, fn, body, findings)


def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    blocks: list[list[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        body = getattr(stmt, name, None)
        if body and isinstance(body[0], ast.stmt):
            blocks.append(body)
    for handler in getattr(stmt, "handlers", []):
        blocks.append(handler.body)
    for case in getattr(stmt, "cases", []):
        blocks.append(case.body)
    return blocks


def check_cancellation_safety(index: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for mod in index.modules.values():
        for fn in mod.functions.values():
            if not isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            _check_c003_block(mod, fn, list(fn.node.body), findings)
    return findings


# ----------------------------------------------------------------------
# C004 — await-spanning races on shared state
# ----------------------------------------------------------------------
def check_races(graph: AsyncGraph) -> list[Finding]:
    index = graph.index
    findings: list[Finding] = []
    for fq in sorted(index.functions):
        weight = graph.weights.get(fq, 0)
        if weight < 2:
            continue
        fn = index.functions[fq]
        mod = index.modules[fn.module]
        events = graph.events(fq)
        reported: set[str] = set()
        # per key: unlocked read, then an await, then an unlocked write
        first_read: dict[str, int] = {}
        await_positions: list[int] = []
        for pos, ev in enumerate(events):
            if ev.kind == "await":
                await_positions.append(pos)
            elif ev.kind == "read" and not ev.locked:
                first_read.setdefault(ev.key or "", pos)
            elif ev.kind == "write" and not ev.locked and ev.key not in reported:
                read_pos = first_read.get(ev.key or "")
                if read_pos is None:
                    continue
                if any(read_pos < a < pos for a in await_positions):
                    reported.add(ev.key or "")
                    findings.append(
                        _finding(
                            mod, fn, ev.node, "C004",
                            f"'{ev.key}' is read and then written across an "
                            f"await in '{fn.qualname}', which runs as "
                            f"{weight} concurrent task instances, with no "
                            "lock held",
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# C005 — determinism-replay violations
# ----------------------------------------------------------------------
def check_shared_rng_draws(graph: AsyncGraph) -> list[Finding]:
    """A seeded Generator drawn from >= 2 concurrent execution roots.

    Roots are async task spawns *and* pool-worker entry points (the
    ``run_in_executor``/``submit`` hop): a generator drawn both by the
    air loop and inside a decode worker would make replay depend on
    pool scheduling just as surely as two racing tasks would.
    """
    index = graph.index
    root_counts = dict(graph.task_roots)
    for root, count in graph.pool_roots.items():
        root_counts[root] = min(2, root_counts.get(root, 0) + count)
    closures = {root: graph.closure(root) for root in root_counts}
    # key -> {fq drawing it -> first draw node}
    drawers: dict[str, dict[str, ast.AST]] = {}
    reachable = set().union(*closures.values()) if closures else set()
    for fq in sorted(reachable):
        for ev in graph.events(fq):
            if ev.kind == "draw" and ev.key is not None:
                drawers.setdefault(ev.key, {}).setdefault(fq, ev.node)
    findings: list[Finding] = []
    for key in sorted(drawers):
        draw_fns = set(drawers[key])
        total = sum(
            count
            for root, count in root_counts.items()
            if closures[root] & draw_fns
        )
        if total < 2:
            continue
        for fq in sorted(draw_fns):
            fn = index.functions[fq]
            mod = index.modules[fn.module]
            findings.append(
                _finding(
                    mod, fn, drawers[key][fq], "C005",
                    f"seeded Generator '{key}' is drawn from {total} "
                    "concurrent task instances; interleaved draws make "
                    "replay order scheduling-dependent",
                )
            )
    return findings


def _guard_counts(test: ast.expr, names: set[str]) -> tuple[bool, bool]:
    """(handles-0-contenders, handles-1-contender) for a guard test."""
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
        and test.operand.id in names
    ):
        return True, False
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        is_len = (
            isinstance(left, ast.Call)
            and isinstance(left.func, ast.Name)
            and left.func.id == "len"
            and len(left.args) == 1
            and isinstance(left.args[0], ast.Name)
            and left.args[0].id in names
        )
        if is_len and isinstance(right, ast.Constant) and isinstance(right.value, int):
            c = right.value
            if isinstance(op, ast.Eq):
                return c == 0, c == 1
            if isinstance(op, ast.LtE):
                return c >= 0, c >= 1
            if isinstance(op, ast.Lt):
                return c >= 1, c >= 2
    return False, False


def _stmt_draw(stmt: ast.AST) -> ast.AST | None:
    for node in _walk_skip_defs(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DRAW_METHODS
        ):
            chain = chain_of(node.func.value)
            if chain is not None and is_rng_chain(chain):
                return node
    return None


def prove_mac_zero_draw(
    index: ProjectIndex,
) -> tuple[list[Finding], list[dict[str, str]]]:
    """Re-prove, statically, that ``MacArbiter.arbitrate`` draws nothing
    when 0 or 1 contenders are present (the replay guarantee the
    gateway's bit-identity rests on)."""
    findings: list[Finding] = []
    proofs: list[dict[str, str]] = []
    for fq in sorted(index.functions):
        if not fq.endswith("MacArbiter.arbitrate"):
            continue
        fn = index.functions[fq]
        mod = index.modules[fn.module]
        args = fn.node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args) if a.arg != "self"]
        names: set[str] = set(params[:1])
        handled0 = handled1 = False
        offender: ast.AST | None = None
        for stmt in fn.node.body:
            # track tuple()/list()/plain aliases of the contenders param
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                aliased = (
                    isinstance(value, ast.Name) and value.id in names
                ) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("tuple", "list", "sorted")
                    and len(value.args) == 1
                    and isinstance(value.args[0], ast.Name)
                    and value.args[0].id in names
                )
                if aliased:
                    names.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
            if (
                isinstance(stmt, ast.If)
                and stmt.body
                and isinstance(stmt.body[-1], (ast.Return, ast.Raise))
            ):
                zero, one = _guard_counts(stmt.test, names)
                if zero or one:
                    draw = _stmt_draw(stmt)  # draw on the uncontended path
                    if draw is not None:
                        offender = draw
                        break
                    handled0 |= zero
                    handled1 |= one
                    continue
            if not (handled0 and handled1):
                draw = _stmt_draw(stmt)
                if draw is not None:
                    offender = draw
                    break
        if offender is not None:
            findings.append(
                _finding(
                    mod, fn, offender, "C005",
                    "MacArbiter.arbitrate may draw from its Generator on "
                    "the uncontended (0/1-contender) path, breaking the "
                    "zero-draw replay guarantee",
                )
            )
        proofs.append(
            {
                "obligation": "mac-zero-draw-when-uncontended",
                "symbol": fq,
                "status": "violated" if offender is not None else "proved",
            }
        )
    return findings, proofs


# ----------------------------------------------------------------------
# C006 — unbounded queues in strict dirs
# ----------------------------------------------------------------------
def check_unbounded_queues(
    index: ProjectIndex, strict_dirs: tuple[str, ...]
) -> list[Finding]:
    findings: list[Finding] = []
    for mod in index.modules.values():
        if not _in_strict_dirs(mod.path, strict_dirs):
            continue
        # map call nodes to their enclosing function for the symbol
        owner: dict[int, FunctionInfo] = {}
        for fn in mod.functions.values():
            for call, _ in iter_region_calls(fn.node):
                owner[id(call)] = fn
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolved_dotted(mod, node.func) != "asyncio.Queue":
                continue
            maxsize: ast.expr | None = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "maxsize":
                    maxsize = kw.value
            unbounded = maxsize is None or (
                isinstance(maxsize, ast.Constant)
                and isinstance(maxsize.value, int)
                and maxsize.value <= 0
            )
            if unbounded:
                findings.append(
                    _finding(
                        mod, owner.get(id(node)), node, "C006",
                        "unbounded asyncio.Queue() in a strict directory; "
                        "pass a positive maxsize so backpressure applies",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def check_concurrency(
    graph: AsyncGraph, *, strict_dirs: tuple[str, ...] | None = None
) -> tuple[list[Finding], list[dict[str, str]]]:
    """Run all C-rules; returns (findings, proof records)."""
    index = graph.index
    dirs = strict_dirs if strict_dirs is not None else STRICT_ASYNC_DIRS
    findings = _BlockingScanner(graph).check()
    findings.extend(check_orphaned_tasks(index))
    findings.extend(check_cancellation_safety(index))
    findings.extend(check_races(graph))
    findings.extend(check_shared_rng_draws(graph))
    mac_findings, proofs = prove_mac_zero_draw(index)
    findings.extend(mac_findings)
    findings.extend(check_unbounded_queues(index, dirs))
    return findings, proofs
