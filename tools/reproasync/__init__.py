"""reproasync — whole-program asyncio/concurrency safety analyzer.

Fourth pillar of the static-analysis suite (after reprolint,
reproflow, reproshape).  Builds reproflow's :class:`ProjectIndex`,
extends its call graph with async spawn edges
(``create_task``/``ensure_future``/``gather``/``asyncio.run``), and
checks the C-series rules: blocking calls reachable in async code,
orphaned tasks, cancellation-unsafe acquire/release spans,
await-spanning races, determinism-replay violations (including a
static re-proof of the MacArbiter zero-draw-when-uncontended
guarantee), and unbounded queues.

Runtime counterpart: :mod:`repro.core.loopwatch` (``REPRO_LOOPWATCH=1``)
corroborates C001 dynamically by measuring event-loop lag.

Public entry point: :func:`analyze_paths`.  The CLI lives in
``tools/reproasync/__main__.py`` (``python -m tools.reproasync``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from tools.analysis_common import selected_by_prefix
from tools.reproasync.model import (
    RULES,
    Baseline,
    Finding,
    is_suppressed,
    suppressions,
)
from tools.reproasync.rules import check_concurrency
from tools.reproasync.taskgraph import AsyncGraph, build_async_graph
from tools.reproflow.project import ProjectIndex

__all__ = [
    "RULES",
    "Finding",
    "Baseline",
    "AnalysisResult",
    "analyze_paths",
    "build_report",
]


@dataclass
class AnalysisResult:
    """Findings plus the async task graph one run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: findings matched by ``--baseline`` (reported but non-fatal)
    baselined: list[Finding] = field(default_factory=list)
    index: ProjectIndex | None = None
    graph: AsyncGraph | None = None
    #: determinism proof records (obligation/symbol/status)
    proofs: list[dict[str, str]] = field(default_factory=list)
    #: (path, line, message) parse failures
    errors: list[tuple[str, int, str]] = field(default_factory=list)


def analyze_paths(
    paths: list[str],
    *,
    select: tuple[str, ...] | None = None,
    strict_dirs: tuple[str, ...] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Analyze ``paths`` and return findings + the async task graph.

    Pragma suppressions and ``select`` filtering are applied here;
    ``baseline`` (if given) partitions surviving findings into new vs.
    acknowledged.
    """
    index = ProjectIndex.build(paths)
    graph = build_async_graph(index)
    findings, proofs = check_concurrency(graph, strict_dirs=strict_dirs)

    pragma_cache: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    kept: list[Finding] = []
    for f in findings:
        if not selected_by_prefix(f.code, select):
            continue
        if f.path not in pragma_cache:
            source = ""
            for mod in index.modules.values():
                if mod.path == f.path:
                    source = mod.source
                    break
            pragma_cache[f.path] = suppressions(source)
        per_line, per_file = pragma_cache[f.path]
        if not is_suppressed(f, per_line, per_file):
            kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    result = AnalysisResult(
        index=index,
        graph=graph,
        proofs=proofs,
        errors=list(index.errors),
    )
    if baseline is not None:
        result.findings, result.baselined = baseline.split(kept)
    else:
        result.findings = kept
    return result


def build_report(result: AnalysisResult) -> dict[str, object]:
    """Machine-readable report: findings + the async call graph."""
    import ast

    graph_json: dict[str, object] = {}
    index = result.index
    graph = result.graph
    if index is not None and graph is not None:
        spawns_by_fn: dict[str, list[dict[str, object]]] = {}
        for site in graph.spawns:
            spawns_by_fn.setdefault(site.spawner, []).append(
                {"target": site.target, "kind": site.kind, "count": site.count}
            )
        for fq in sorted(index.functions):
            fn = index.functions[fq]
            graph_json[fq] = {
                "path": fn.path.replace("\\", "/"),
                "line": fn.node.lineno,
                "is_async": isinstance(fn.node, ast.AsyncFunctionDef),
                "calls": sorted(graph.edges.get(fq, ())),
                "spawns": sorted(
                    spawns_by_fn.get(fq, []),
                    key=lambda s: (str(s["target"]), str(s["kind"])),
                ),
                "task_instances": graph.task_roots.get(fq, 0),
                "concurrency_weight": graph.weights.get(fq, 0),
            }
    by_code: dict[str, int] = {}
    for f in result.findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    n_async = sum(1 for g in graph_json.values() if g["is_async"])  # type: ignore[index]
    return {
        "tool": "reproasync",
        "rules": RULES,
        "findings": [f.to_json() for f in result.findings],
        "baselined": [f.to_json() for f in result.baselined],
        "call_graph": graph_json,
        "task_roots": dict(sorted(result.graph.task_roots.items()))
        if result.graph is not None
        else {},
        "pool_roots": dict(sorted(result.graph.pool_roots.items()))
        if result.graph is not None
        else {},
        "proofs": sorted(result.proofs, key=lambda p: p["symbol"]),
        "summary": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "by_code": dict(sorted(by_code.items())),
            "functions": len(graph_json),
            "async_functions": n_async,
            "spawn_sites": len(result.graph.spawns) if result.graph else 0,
            "proofs_proved": sum(
                1 for p in result.proofs if p["status"] == "proved"
            ),
            "parse_errors": len(result.errors),
        },
    }
