"""Async task graph: spawn edges, task roots, and ordered event streams.

Extends reproflow's :class:`~tools.reproflow.project.ProjectIndex` with
the concurrency structure the C-rules need:

* **Extended call resolution** — reproflow resolves ``self.method()``
  and calls on locals built from project-class constructors; here we
  additionally resolve one-level instance attributes (``self.mac`` set
  in ``__init__`` or declared as an annotated/dataclass field), so
  ``self.mac.arbitrate()`` produces a real edge.
* **Async spawn sites** — ``asyncio.create_task`` / ``ensure_future`` /
  ``gather(coro(), ...)`` / ``asyncio.run(main())`` call sites with the
  target coroutine resolved and an *instance multiplicity* (a spawn
  inside a loop or comprehension counts as two instances).
* **Ordered event streams** — a per-function, execution-ordered list of
  ``await`` / shared-state ``read`` / ``write`` / RNG ``draw`` events
  with lock-region tracking, consumed by C003/C004/C005.

Resolution stays conservative in reproflow's spirit: an edge or a
shared-state key is recorded only when it can be identified
syntactically; anything else produces no event rather than a guess.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field

from tools.reproflow.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted,
    local_instance_map,
    resolve_call,
)
from tools.reproflow.purity import _local_bindings, worker_roots

__all__ = [
    "SpawnSite",
    "Event",
    "AsyncGraph",
    "build_async_graph",
    "chain_of",
    "resolved_dotted",
    "is_rng_chain",
    "DRAW_METHODS",
]

#: numpy Generator draw methods (all consume RNG state).
DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "normal",
        "standard_normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "exponential",
        "rayleigh",
        "poisson",
        "binomial",
        "bytes",
    }
)

#: method names that mutate their receiver in place (shared with
#: reproflow's purity pass, plus queue primitives).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "put_nowait",
        "move_to_end",
    }
)

_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})
_RNG_RE = re.compile(r"rng|random", re.IGNORECASE)
_LOCK_RE = re.compile(r"lock|sem|mutex", re.IGNORECASE)


def chain_of(node: ast.expr) -> list[str] | None:
    """``a.b[i].c`` -> ``["a", "b", "c"]`` (subscripts collapse onto
    their base); ``None`` when the chain is not rooted at a Name."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


def resolved_dotted(mod: ModuleInfo, node: ast.expr) -> str:
    """Dotted call target with the head mapped through module imports:
    ``sleep`` (from ``from time import sleep``) -> ``time.sleep``."""
    dotted = _dotted(node)
    if not dotted:
        return ""
    head, _, rest = dotted.partition(".")
    target = mod.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def is_rng_chain(chain: list[str]) -> bool:
    """Does the receiver chain name a random Generator (rng-ish)?"""
    return bool(chain) and _RNG_RE.search(chain[-1]) is not None


def _ann_class(index: ProjectIndex, mod: ModuleInfo, ann: ast.expr | None) -> str | None:
    """Annotation expression -> project class fq (Optional unwrapped)."""
    if ann is None:
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _ann_class(index, mod, ann.left) or _ann_class(index, mod, ann.right)
    if isinstance(ann, ast.Subscript):
        base = ann.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _ann_class(index, mod, ann.slice)
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value.strip().split("[")[0].split("|")[0].strip()
        fq = index.resolve_symbol(mod, text)
        return fq if fq in index.classes else None
    fq = index.resolve_symbol(mod, _dotted(ann))
    return fq if fq in index.classes else None


def class_attr_instances(index: ProjectIndex) -> dict[str, str]:
    """``"pkg.Cls.attr" -> instance class fq`` for attributes assigned
    from a project-class constructor in any method (``self.mac =
    MacArbiter(...)``) or declared as annotated class/dataclass fields
    (``pipeline: TagPipeline``)."""
    out: dict[str, str] = {}
    for ci in index.classes.values():
        mod = index.modules.get(ci.module)
        if mod is None:
            continue
        for item in ci.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                target_cls = _ann_class(index, mod, item.annotation)
                if target_cls is not None:
                    out[f"{ci.fq}.{item.target.id}"] = target_cls
        for method in ci.methods:
            fn = mod.functions.get(f"{ci.name}.{method}")
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                target_cls = index.resolve_symbol(mod, _dotted(node.value.func))
                if target_cls not in index.classes:
                    continue
                for t in node.targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                    ):
                        out[f"{ci.fq}.{t.attr}"] = target_cls
    return out


def resolve_call_ex(
    index: ProjectIndex,
    mod: ModuleInfo,
    fn: FunctionInfo,
    node: ast.Call,
    local_instances: dict[str, str],
    attr_instances: dict[str, str],
) -> FunctionInfo | None:
    """reproflow's resolve_call, plus instance-attribute chains:
    ``self.mac.arbitrate()`` and ``session.pipeline.decode()`` resolve
    when each hop is a known class attribute."""
    target = resolve_call(index, mod, fn, node, local_instances)
    if target is not None:
        return target
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    chain = chain_of(func)
    if chain is None or len(chain) < 3:
        return None
    root, *attrs, method = chain
    cls_fq = local_instances.get(root) or mod.module_instances.get(root)
    if cls_fq is None:
        return None
    for attr in attrs:
        cls_fq = attr_instances.get(f"{cls_fq}.{attr}")
        if cls_fq is None:
            return None
    return index.function_at(f"{cls_fq}.{method}")


# ----------------------------------------------------------------------
# spawn sites
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpawnSite:
    """One async fan-out call site with a resolved target."""

    spawner: str  #: fq of the function containing the call
    target: str  #: fq of the spawned coroutine function
    kind: str  #: create_task | ensure_future | gather | run
    node: ast.Call
    count: int  #: instance multiplicity (2 = spawned in a loop/comp)
    #: the coroutine-construction expression (``worker()`` inside
    #: ``create_task(worker())``) — syntactically a call, but it only
    #: builds the coroutine, so it is excluded from execution closures
    arg_node: ast.expr | None = None


def _taskgroup_locals(fn: FunctionInfo) -> set[str]:
    """Locals bound to an ``asyncio.TaskGroup()`` (supervised spawns)."""
    names: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _dotted(node.value.func).endswith("TaskGroup"):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        names.add(t.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and _dotted(item.context_expr.func).endswith("TaskGroup")
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    names.add(item.optional_vars.id)
    return names


def iter_region_calls(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.Call, bool]]:
    """All Call nodes in the function's own execution region (nested
    def bodies excluded, lambdas included) with an ``in_loop`` flag."""
    out: list[tuple[ast.Call, bool]] = []

    def visit(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            child_in_loop = in_loop
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor)) and child in (
                *node.body,
                *getattr(node, "orelse", []),
            ):
                child_in_loop = True
            if isinstance(child, ast.Call):
                out.append((child, child_in_loop))
            if isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Call):
                        out.append((sub, True))
                continue
            visit(child, child_in_loop)

    visit(fn_node, False)
    return out


def _spawn_target(
    index: ProjectIndex,
    mod: ModuleInfo,
    fn: FunctionInfo,
    arg: ast.expr,
    local_instances: dict[str, str],
    attr_instances: dict[str, str],
) -> tuple[FunctionInfo | None, bool, ast.expr | None]:
    """Resolve a spawned-coroutine argument; returns
    (target, in_comprehension, construction node)."""
    if isinstance(arg, ast.Starred):
        arg = arg.value
    if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
        target, _, node = _spawn_target(
            index, mod, fn, arg.elt, local_instances, attr_instances
        )
        return target, True, node
    if isinstance(arg, ast.Call):
        return (
            resolve_call_ex(index, mod, fn, arg, local_instances, attr_instances),
            False,
            arg,
        )
    if isinstance(arg, ast.Name):
        nested = f"{fn.qualname}.{arg.id}"
        if nested in mod.functions:
            return mod.functions[nested], False, arg
        fq = index.resolve_symbol(mod, arg.id)
        if fq is not None and fq in index.functions:
            return index.functions[fq], False, arg
    return None, False, None


def collect_spawns(
    index: ProjectIndex, attr_instances: dict[str, str]
) -> list[SpawnSite]:
    """Every resolved async spawn site in the project."""
    sites: list[SpawnSite] = []
    for mod in index.modules.values():
        for fn in mod.functions.values():
            local_instances = local_instance_map(index, mod, fn)
            for call, in_loop in iter_region_calls(fn.node):
                func = call.func
                kind: str | None = None
                if isinstance(func, ast.Attribute) and func.attr in _SPAWN_ATTRS:
                    kind = func.attr
                elif isinstance(func, ast.Attribute) and func.attr == "gather":
                    kind = "gather"
                else:
                    dotted = resolved_dotted(mod, func)
                    if dotted in ("asyncio.create_task", "asyncio.ensure_future"):
                        kind = dotted.rsplit(".", 1)[-1]
                    elif dotted == "asyncio.gather":
                        kind = "gather"
                    elif dotted == "asyncio.run":
                        kind = "run"
                if kind is None:
                    continue
                spawn_args = call.args if kind == "gather" else call.args[:1]
                for arg in spawn_args:
                    target, in_comp, arg_node = _spawn_target(
                        index, mod, fn, arg, local_instances, attr_instances
                    )
                    if target is None:
                        continue
                    sites.append(
                        SpawnSite(
                            spawner=fn.fq,
                            target=target.fq,
                            kind=kind,
                            node=call,
                            count=2 if (in_loop or in_comp) else 1,
                            arg_node=arg_node,
                        )
                    )
    return sites


# ----------------------------------------------------------------------
# event streams
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Event:
    """One execution-ordered event inside a function body."""

    kind: str  #: await | read | write | draw
    key: str | None  #: shared-state key ("pkg.Cls::attr.chain"), None for await
    node: ast.AST
    locked: bool  #: inside a with-block whose context names a lock


class _SharedKeys:
    """Resolves expressions to shared-state keys for one function.

    Shared means observable from another task: ``self``/``cls``
    attributes, attributes of annotated-parameter or module-level
    project instances, and module globals.  Locals constructed inside
    the function (fresh per invocation) are *not* shared.
    """

    def __init__(self, index: ProjectIndex, mod: ModuleInfo, fn: FunctionInfo) -> None:
        self.mod = mod
        self.fn = fn
        self.locals = _local_bindings(fn)
        self.param_instances: dict[str, str] = {}
        for a in [
            *fn.node.args.posonlyargs,
            *fn.node.args.args,
            *fn.node.args.kwonlyargs,
        ]:
            cls_fq = _ann_class(index, mod, a.annotation)
            if cls_fq is not None:
                self.param_instances[a.arg] = cls_fq

    def key_for(self, chain: list[str]) -> str | None:
        root, attrs = chain[0], chain[1:]
        if root in ("self", "cls"):
            if self.fn.cls is None or not attrs:
                return None
            return f"{self.fn.module}.{self.fn.cls}::{'.'.join(attrs)}"
        if attrs:
            cls_fq = self.param_instances.get(root) or self.mod.module_instances.get(
                root
            )
            if cls_fq is not None:
                return f"{cls_fq}::{'.'.join(attrs)}"
        if root not in self.locals and root in self.mod.module_level_names:
            return f"{self.mod.name}::{'.'.join(chain)}"
        return None


class _EventScanner:
    """Linear-order event extraction (branches scanned in source order)."""

    def __init__(self, index: ProjectIndex, mod: ModuleInfo, fn: FunctionInfo) -> None:
        self.keys = _SharedKeys(index, mod, fn)
        self.fn = fn
        self.events: list[Event] = []
        self.lock_depth = 0

    def run(self) -> list[Event]:
        self._stmts(self.fn.node.body)
        return self.events

    def _emit(self, kind: str, key: str | None, node: ast.AST) -> None:
        self.events.append(Event(kind, key, node, self.lock_depth > 0))

    # -- statements -------------------------------------------------------
    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for t in stmt.targets:
                self._store(t)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
                self._store(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            chain = chain_of(stmt.target)
            key = self.keys.key_for(chain) if chain else None
            if key is not None:
                self._emit("read", key, stmt.target)
                self._emit("write", key, stmt.target)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._expr(stmt.iter)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.AsyncFor):
            self._expr(stmt.iter)
            self._emit("await", None, stmt)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            holds_lock = False
            for item in stmt.items:
                self._expr(item.context_expr)
                chain = chain_of(item.context_expr) or (
                    chain_of(item.context_expr.func)
                    if isinstance(item.context_expr, ast.Call)
                    else None
                )
                if chain and _LOCK_RE.search(".".join(chain)):
                    holds_lock = True
            if isinstance(stmt, ast.AsyncWith):
                self._emit("await", None, stmt)
            if holds_lock:
                self.lock_depth += 1
            self._stmts(stmt.body)
            if holds_lock:
                self.lock_depth -= 1
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.test)
        elif isinstance(stmt, ast.Match):
            self._expr(stmt.subject)
            for case in stmt.cases:
                self._stmts(case.body)
        # Pass/Break/Continue/Import/Global/Nonlocal/Delete: no events

    def _store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt)
            return
        if isinstance(target, ast.Starred):
            self._store(target.value)
            return
        if isinstance(target, ast.Subscript):
            self._expr(target.slice)
        chain = chain_of(target)
        if chain is None:
            return
        key = self.keys.key_for(chain)
        if key is not None:
            self._emit("write", key, target)

    # -- expressions ------------------------------------------------------
    def _expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Await):
            self._expr(node.value)
            self._emit("await", None, node)
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if getattr(node, "value", None) is not None:
                self._expr(node.value)  # type: ignore[arg-type]
            if isinstance(self.fn.node, ast.AsyncFunctionDef):
                self._emit("await", None, node)  # async-gen suspension point
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, (ast.Attribute, ast.Name)):
            chain = chain_of(node)
            key = self.keys.key_for(chain) if chain else None
            if key is not None:
                self._emit("read", key, node)
            elif isinstance(node, ast.Attribute):
                self._expr(node.value)
            return
        if isinstance(node, ast.Subscript):
            self._expr(node.value)
            self._expr(node.slice)
            return
        if isinstance(node, ast.Lambda):
            return  # body executes later, in an unknown order
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for cond in child.ifs:
                    self._expr(cond)
            elif isinstance(child, ast.FormattedValue):
                self._expr(child.value)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            chain = chain_of(func.value)
            key = self.keys.key_for(chain) if chain else None
            if key is not None:
                if func.attr in DRAW_METHODS and is_rng_chain(chain or []):
                    self._emit("draw", key, node)
                elif func.attr in MUTATING_METHODS:
                    self._emit("read", key, node)
                    self._emit("write", key, node)
                else:
                    self._emit("read", key, node)
            elif isinstance(func.value, (ast.Call, ast.Subscript, ast.Attribute)):
                self._expr(func.value)
        for arg in node.args:
            self._expr(arg.value if isinstance(arg, ast.Starred) else arg)
        for kw in node.keywords:
            self._expr(kw.value)


# ----------------------------------------------------------------------
# the graph
# ----------------------------------------------------------------------
@dataclass
class AsyncGraph:
    """Everything the C-rules consume, built once per analysis."""

    index: ProjectIndex
    attr_instances: dict[str, str] = field(default_factory=dict)
    spawns: list[SpawnSite] = field(default_factory=list)
    #: async task roots -> instance multiplicity (capped at 2)
    task_roots: dict[str, int] = field(default_factory=dict)
    #: process/thread-pool roots (reproflow F-series spawn edges)
    pool_roots: dict[str, int] = field(default_factory=dict)
    #: fq -> extended outgoing edges (calls + refs + spawns + attr-chain);
    #: the full graph, reported as-is in the JSON artifact
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: fq -> *execution* edges only: resolved calls minus the
    #: coroutine-construction calls inside spawn sites (building
    #: ``worker()`` for ``create_task`` does not run its body here)
    exec_edges: dict[str, set[str]] = field(default_factory=dict)
    #: fq -> summed instance weight over all roots reaching it
    weights: dict[str, int] = field(default_factory=dict)
    #: fq -> ordered event stream (lazily filled)
    _events: dict[str, list[Event]] = field(default_factory=dict)

    def events(self, fq: str) -> list[Event]:
        if fq not in self._events:
            fn = self.index.functions[fq]
            mod = self.index.modules[fn.module]
            self._events[fq] = _EventScanner(self.index, mod, fn).run()
        return self._events[fq]

    def closure(self, root: str) -> set[str]:
        """Functions executed *within* one instance of ``root`` (spawn
        targets run in their own task, so spawn edges are not followed)."""
        seen: set[str] = set()
        queue = deque([root])
        while queue:
            fq = queue.popleft()
            if fq in seen or fq not in self.index.functions:
                continue
            seen.add(fq)
            queue.extend(self.exec_edges.get(fq, ()))
        return seen


def build_async_graph(index: ProjectIndex) -> AsyncGraph:
    graph = AsyncGraph(index=index)
    graph.attr_instances = class_attr_instances(index)
    graph.spawns = collect_spawns(index, graph.attr_instances)
    spawn_arg_ids = {id(s.arg_node) for s in graph.spawns if s.arg_node is not None}

    for mod in index.modules.values():
        for fn in mod.functions.values():
            local_instances = local_instance_map(index, mod, fn)
            execs: set[str] = set()
            for call, _ in iter_region_calls(fn.node):
                if id(call) in spawn_arg_ids:
                    continue
                target = resolve_call_ex(
                    index, mod, fn, call, local_instances, graph.attr_instances
                )
                if target is not None:
                    execs.add(target.fq)
            graph.exec_edges[fn.fq] = execs
            # full graph for the report: reproflow's edges + ours + spawns
            edges = set(fn.calls) | set(fn.references) | set(fn.spawn_targets)
            edges |= execs
            graph.edges[fn.fq] = {e for e in edges if e in index.functions}
    for site in graph.spawns:
        graph.edges.setdefault(site.spawner, set()).add(site.target)

    # roots: async spawn targets (with multiplicity) + pool workers
    for site in graph.spawns:
        if site.target in index.functions:
            prev = graph.task_roots.get(site.target, 0)
            graph.task_roots[site.target] = min(2, prev + site.count)
    for fq in worker_roots(index):
        graph.pool_roots[fq] = 2  # pools fan out by design

    # instance weight: how many concurrent task instances can reach fq
    for root, count in (*graph.task_roots.items(), *graph.pool_roots.items()):
        for fq in graph.closure(root):
            graph.weights[fq] = graph.weights.get(fq, 0) + count
    return graph
