# Developer entry points for the multiscatter reproduction.

PYTHON ?= python

.PHONY: install test test-fast smoke serve-smoke crash-test bench bench-primitives bench-gateway bench-tables perf-report examples lint analyze typecheck check clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Skip multi-process / long-running tests (marked @pytest.mark.slow).
test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Determinism/dtype AST linter + units/purity dataflow analyzer +
# symbolic shape/dtype verifier + asyncio/concurrency safety analyzer
# (docs/STATIC_ANALYSIS.md).
lint:
	$(PYTHON) -m tools.reprolint src/
	$(PYTHON) -m tools.reproflow src/repro
	$(PYTHON) -m tools.reproshape src/repro
	$(PYTHON) -m tools.reproasync src/repro

# The whole-program analyzers with their JSON reports: the annotated
# call graph (reproflow), the symbolic shape table + batch/scalar
# parity proofs (reproshape), and the async task graph + determinism
# proofs (reproasync) land next to the tree for inspection.
analyze:
	$(PYTHON) -m tools.reproflow src/repro --format=json > reproflow-report.json
	$(PYTHON) -m tools.reproshape src/repro --format=json > reproshape-report.json
	$(PYTHON) -m tools.reproasync src/repro --format=json > reproasync-report.json
	@echo "analyze: wrote reproflow-report.json, reproshape-report.json, and reproasync-report.json"

# mypy (strict on repro.phy/core/channel/sim per pyproject.toml).
# Skips with a notice when mypy is not installed, so `make check`
# stays usable in minimal environments.
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy \
		|| echo "typecheck: mypy not installed, skipping (pip install mypy)"

# The pre-commit gate: what CI runs on every push/PR.
check: lint typecheck test-fast

# Every experiment at quick scale, in parallel, with artifact gating
# (what the CI smoke job runs).
smoke:
	REPRO_WORKERS=2 $(PYTHON) -m repro run-all --preset quick --out runs/smoke
	$(PYTHON) tools/check_artifacts.py runs/smoke --expect-all

# Streaming gateway smoke: 8 tags, 2 subscribers, block policy,
# 2 decode workers (the sharded data plane crosses the executor hop);
# fails on any drop, eviction, consumer error, event-loop lag
# violation, or unclean drain (the CI gateway smoke step).  Runs under
# asyncio debug mode with the loopwatch sanitizer armed.
serve-smoke:
	PYTHONASYNCIODEBUG=1 REPRO_LOOPWATCH=1 \
		$(PYTHON) -m repro serve --tags 8 --subscribers 2 --max-packets 32 \
		--decode-workers 2 --policy block --require-clean

# Crash a run mid-save with the fault-injection harness, resume it,
# and require byte-identity with an undisturbed run
# (docs/ROBUSTNESS.md; this is the CI crash/resume guard).
crash-test:
	$(PYTHON) -m repro run-all --preset quick --out runs/fresh
	REPRO_FAULTS="kill:site=save,name=fig15_occlusion" \
		$(PYTHON) -m repro run-all --preset quick --out runs/crashy || true
	$(PYTHON) -m repro run-all --resume runs/crashy
	diff -r runs/fresh runs/crashy

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Kernel + e2e + gateway benchmarks with their regression gates;
# updates the committed BENCH_*.json baselines.
bench-primitives:
	$(PYTHON) benchmarks/run_benchmarks.py

# Gateway load sweep alone: concurrent tags vs p99 decode latency,
# doubling past the configured points until the budget breaks, plus
# the decode-worker (tags-per-host) sweep (prints the
# BENCH_gateway.json payload without touching baselines).
bench-gateway:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_gateway.py \
		--rounds 3 --max-tags 256

# Timers/counters/cache hit-rates of one representative experiment.
perf-report:
	REPRO_PERF=1 $(PYTHON) -m repro run fig05_envelope_id

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks runs
	find . -name __pycache__ -type d -exec rm -rf {} +
