# Developer entry points for the multiscatter reproduction.

PYTHON ?= python

.PHONY: install test bench bench-tables examples lint clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
